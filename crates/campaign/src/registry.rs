//! The figure registry: every figure and table of the paper's evaluation,
//! re-expressed as a declarative [`Campaign`].
//!
//! Each entry mirrors the parameters of the former ad-hoc `fig*`/`table*`
//! bench binary (same sweeps, same seeds), so `prac-bench run --all`
//! reproduces the paper end-to-end, and new scenarios — another threshold,
//! another policy, another workload mix — are a few lines of data here
//! rather than a new binary.

use dram_sim::DeviceProfile;
use prac_core::config::PracLevel;
use prac_core::queue::QueueKind;
use prac_core::tprac::TrefRate;
use pracleak::covert::CovertChannelKind;
use system_sim::MitigationSetup;
use workloads::attack::{attack_registry, AttackKind};
use workloads::{full_suite, quick_suite, MemoryIntensity, WorkloadSpec};

use crate::scenario::{Campaign, PerfScenario, Scenario, ScenarioSpec};

/// Global knobs applied to every campaign a registry builds: sweep size and
/// simulation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Full paper-scale sweeps instead of the quick (CI / laptop) subset.
    pub full: bool,
    /// Instructions per core for full-system performance runs.
    pub instructions_per_core: u64,
    /// Cores for full-system performance runs.
    pub cores: u32,
    /// Memory channels for full-system performance runs (the `scaling`
    /// campaign sweeps its own channel counts and ignores this knob).
    pub channels: u32,
    /// Rank-count override for full-system performance runs.  `0` — the
    /// default — keeps the organisation's own rank count and every
    /// pre-existing cache key byte-identical.  The `scaling` campaign sweeps
    /// its own rank counts and ignores this knob.
    pub ranks: u32,
    /// Device timing profile for full-system performance runs.  The JEDEC
    /// baseline — the default — reproduces the paper's system and its exact
    /// cache keys.
    pub device_profile: DeviceProfile,
    /// Adversarial co-runner for full-system performance runs (the
    /// `attacks` campaign sweeps its own attack patterns and ignores this
    /// knob).  `None` — the default — keeps every cell benign and every
    /// pre-existing cache key byte-identical.
    pub attack: Option<AttackKind>,
}

impl Profile {
    /// The quick profile: reduced workload suite, short instruction budget.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            full: false,
            instructions_per_core: 20_000,
            cores: 2,
            channels: 1,
            ranks: 0,
            device_profile: DeviceProfile::JedecBaseline,
            attack: None,
        }
    }

    /// The full paper-scale profile.
    #[must_use]
    pub fn full() -> Self {
        Self {
            full: true,
            instructions_per_core: 150_000,
            cores: 4,
            channels: 1,
            ranks: 0,
            device_profile: DeviceProfile::JedecBaseline,
            attack: None,
        }
    }

    fn suite(&self) -> Vec<WorkloadSpec> {
        if self.full {
            full_suite()
        } else {
            quick_suite()
        }
    }

    /// One representative workload per memory-intensity bucket.
    fn intensity_buckets(&self) -> Vec<WorkloadSpec> {
        let suite = self.suite();
        [
            MemoryIntensity::High,
            MemoryIntensity::Medium,
            MemoryIntensity::Low,
        ]
        .into_iter()
        .filter_map(|band| suite.iter().find(|w| w.intensity == band).cloned())
        .collect()
    }

    fn nrh_sweep(&self) -> &'static [u32] {
        if self.full {
            &[128, 256, 512, 1024, 2048, 4096]
        } else {
            &[256, 1024, 4096]
        }
    }
}

/// Builds every registered campaign under the given profile, in paper order.
#[must_use]
pub fn all_campaigns(profile: &Profile) -> Vec<Campaign> {
    vec![
        fig03(profile),
        fig04(profile),
        fig05(profile),
        fig07(profile),
        fig09(profile),
        fig10(profile),
        fig11(profile),
        fig12(profile),
        fig13(profile),
        fig14(profile),
        table2(profile),
        table5(profile),
        storage(profile),
        defenses(profile),
        scaling(profile),
        attacks(profile),
    ]
}

/// Looks a campaign up by registry name.
#[must_use]
pub fn find_campaign(name: &str, profile: &Profile) -> Option<Campaign> {
    all_campaigns(profile).into_iter().find(|c| c.name == name)
}

/// Appends one performance cell per (workload × setup) pair.  Scenario
/// names embed the descriptor's stable slug.
#[allow(clippy::too_many_arguments)]
fn push_perf_matrix(
    campaign: &mut Campaign,
    profile: &Profile,
    suite: &[WorkloadSpec],
    setups: &[MitigationSetup],
    nrh: u32,
    prac_level: PracLevel,
    seed: u64,
    name_prefix: &str,
) {
    for workload in suite {
        for setup in setups {
            campaign.push(Scenario::new(
                format!("{name_prefix}{}/{}", workload.workload.name, setup.slug()),
                ScenarioSpec::Perf(Box::new(PerfScenario {
                    setup: setup.clone(),
                    rowhammer_threshold: nrh,
                    prac_level,
                    workload: workload.clone(),
                    instructions_per_core: profile.instructions_per_core,
                    cores: profile.cores,
                    channels: profile.channels,
                    ranks: profile.ranks,
                    profile: profile.device_profile,
                    attack: profile.attack,
                    seed,
                })),
            ));
        }
    }
}

fn fig03(profile: &Profile) -> Campaign {
    let (nbo, window_ns) = if profile.full {
        (256, 2_000_000.0)
    } else {
        (128, 400_000.0)
    };
    let mut campaign = Campaign::new(
        "fig03",
        "Attacker-observed latency with and without concurrent Alert Back-Off",
        "Mean spiked latencies of ~545/~976/~1669 ns for 1/2/4 RFMs per ABO, flat baseline without ABO",
    );
    campaign.push(Scenario::new(
        "no-abo",
        ScenarioSpec::AboLatency {
            prac_level: None,
            nbo,
            window_ns,
        },
    ));
    for level in PracLevel::all() {
        campaign.push(Scenario::new(
            format!("prac-{}", level.rfms_per_alert()),
            ScenarioSpec::AboLatency {
                prac_level: Some(level),
                nbo,
                window_ns,
            },
        ));
    }
    campaign
}

/// The side-channel parameters each profile uses: `(nbo, encryptions)`.
fn side_channel_shape(profile: &Profile) -> (u32, u32) {
    if profile.full {
        (256, 200)
    } else {
        (128, 100)
    }
}

fn fig04(profile: &Profile) -> Campaign {
    let (nbo, encryptions) = side_channel_shape(profile);
    let mut campaign = Campaign::new(
        "fig04",
        "One PRACLeak side-channel instance (p0 = 0, k0 = 0)",
        "Victim drives ~207 ACTs to Row-0; victim + attacker ACTs to the hottest row sum to NBO",
    );
    campaign.push(Scenario::new(
        "k0-0x00",
        ScenarioSpec::SideChannel {
            nbo,
            encryptions,
            k0: 0,
            p0: 0,
            defended: false,
            seed: 0x5ec2e7,
        },
    ));
    campaign
}

fn fig05(profile: &Profile) -> Campaign {
    let (nbo, encryptions) = side_channel_shape(profile);
    let step = if profile.full { 4 } else { 16 };
    let mut campaign = Campaign::new(
        "fig05",
        "Key-byte sweep: leaked row index vs secret key byte 0",
        "The hottest row walks Row-0..Row-15 with k0; the attacker recovers the top nibble of every key byte",
    );
    for k0 in (0..256usize).step_by(step) {
        campaign.push(Scenario::new(
            format!("k0-{k0:#04x}"),
            ScenarioSpec::SideChannel {
                nbo,
                encryptions,
                k0: k0 as u8,
                p0: 0,
                defended: false,
                seed: 0xF165,
            },
        ));
    }
    campaign
}

fn fig07(_profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "fig07",
        "Worst-case activations (TMAX) vs TB-Window, and the solved TB-Window per threshold",
        "TMAX(1 tREFI) = 572 (reset) / 736 (no reset); NRH = 1024 needs ~one TB-RFM per 1.6 tREFI",
    );
    for counter_reset in [true, false] {
        campaign.push(Scenario::new(
            format!("tmax-series-{}", reset_slug(counter_reset)),
            ScenarioSpec::TmaxSeries {
                nbo: 4096,
                counter_reset,
            },
        ));
    }
    for &nrh in &[128u32, 256, 512, 1024, 2048, 4096] {
        for counter_reset in [true, false] {
            campaign.push(Scenario::new(
                format!("solve-nrh{nrh}-{}", reset_slug(counter_reset)),
                ScenarioSpec::SolveWindow { nrh, counter_reset },
            ));
        }
    }
    campaign
}

fn fig09(profile: &Profile) -> Campaign {
    let (nbo, encryptions) = side_channel_shape(profile);
    let step = if profile.full { 8 } else { 32 };
    let mut campaign = Campaign::new(
        "fig09",
        "Empirical TPRAC validation: row triggering the first RFM, with and without the defense",
        "Without TPRAC the first-RFM row tracks the key nibble; with TPRAC there is no correlation and 0 ABO-RFMs",
    );
    for k0 in (0..256usize).step_by(step) {
        for defended in [false, true] {
            campaign.push(Scenario::new(
                format!(
                    "k0-{k0:#04x}-{}",
                    if defended { "tprac" } else { "undefended" }
                ),
                ScenarioSpec::SideChannel {
                    nbo,
                    encryptions,
                    k0: k0 as u8,
                    p0: 0,
                    defended,
                    seed: 0x916,
                },
            ));
        }
    }
    campaign
}

fn fig10(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "fig10",
        "Normalised performance of TPRAC vs the insecure baselines at NRH = 1024",
        "ABO-Only ~1.00, ABO+ACB-RFM ~0.993, TPRAC ~0.966 on average; up to ~6-8% on memory-intensive workloads",
    );
    push_perf_matrix(
        &mut campaign,
        profile,
        &profile.suite(),
        &MitigationSetup::figure10_set(),
        1024,
        PracLevel::One,
        0x000F_1610,
        "",
    );
    campaign
}

fn fig11(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "fig11",
        "Sensitivity to the PRAC level (1, 2 or 4 RFMs per Alert) at NRH = 1024",
        "Performance is flat across PRAC-1/2/4 because benign workloads rarely trigger ABOs",
    );
    let suite = profile.suite();
    for level in PracLevel::all() {
        push_perf_matrix(
            &mut campaign,
            profile,
            &suite,
            &MitigationSetup::figure10_set(),
            1024,
            level,
            0x000F_1611 ^ u64::from(level.rfms_per_alert()),
            &format!("prac{}/", level.rfms_per_alert()),
        );
    }
    campaign
}

fn fig12(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "fig12",
        "TPRAC performance vs Targeted-Refresh rate at NRH = 1024",
        "Slowdowns of 3.4%/2.4%/2.0%/1.4%/~0% with no TREF and one TREF per 4/3/2/1 tREFI",
    );
    let setups: Vec<MitigationSetup> = TrefRate::figure12_sweep()
        .into_iter()
        .map(|tref_rate| MitigationSetup::Tprac {
            tref_rate,
            counter_reset: true,
        })
        .collect();
    push_perf_matrix(
        &mut campaign,
        profile,
        &profile.suite(),
        &setups,
        1024,
        PracLevel::One,
        0x000F_1612,
        "",
    );
    campaign
}

fn nrh_sweep_setups() -> Vec<MitigationSetup> {
    vec![
        MitigationSetup::AboOnly,
        MitigationSetup::AboPlusAcbRfm,
        MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: true,
        },
        MitigationSetup::Tprac {
            tref_rate: TrefRate::EveryTrefi(4),
            counter_reset: true,
        },
        MitigationSetup::Tprac {
            tref_rate: TrefRate::EveryTrefi(1),
            counter_reset: true,
        },
    ]
}

fn fig13(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "fig13",
        "Normalised performance vs RowHammer threshold (NRH 128-4096)",
        "TPRAC slowdowns of 0.6%/1.6%/3.4% at NRH = 4096/2048/1024, growing to 22.6% at 128",
    );
    let suite = profile.suite();
    let setups = nrh_sweep_setups();
    for &nrh in profile.nrh_sweep() {
        push_perf_matrix(
            &mut campaign,
            profile,
            &suite,
            &setups,
            nrh,
            PracLevel::One,
            0x000F_1613 ^ u64::from(nrh),
            &format!("nrh{nrh}/"),
        );
    }
    campaign
}

fn fig14(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "fig14",
        "TPRAC with vs without per-row counter reset, across RowHammer thresholds",
        "At NRH >= 1024 the reset policy changes performance by < 1%; at NRH = 128 it is worth ~3.4%",
    );
    let suite = profile.suite();
    let setups: Vec<MitigationSetup> = [
        (true, TrefRate::None),
        (false, TrefRate::None),
        (true, TrefRate::EveryTrefi(1)),
        (false, TrefRate::EveryTrefi(1)),
    ]
    .into_iter()
    .map(|(counter_reset, tref_rate)| MitigationSetup::Tprac {
        tref_rate,
        counter_reset,
    })
    .collect();
    for &nrh in profile.nrh_sweep() {
        push_perf_matrix(
            &mut campaign,
            profile,
            &suite,
            &setups,
            nrh,
            PracLevel::One,
            0x000F_1614 ^ u64::from(nrh),
            &format!("nrh{nrh}/"),
        );
    }
    campaign
}

fn table2(profile: &Profile) -> Campaign {
    let symbols = if profile.full { 32 } else { 8 };
    let nbos: &[u32] = if profile.full {
        &[256, 512, 1024]
    } else {
        &[256, 512]
    };
    let mut campaign = Campaign::new(
        "table2",
        "Covert-channel transmission period and bitrate",
        "Activity-Based: 24.1-91.8 us, 41.4-10.9 Kbps; Activation-Count-Based: 64.7-257.6 us, 123.6-38.8 Kbps",
    );
    for kind in [
        CovertChannelKind::ActivityBased,
        CovertChannelKind::ActivationCountBased,
    ] {
        for &nbo in nbos {
            campaign.push(Scenario::new(
                format!(
                    "{}-nbo{nbo}",
                    match kind {
                        CovertChannelKind::ActivityBased => "activity",
                        CovertChannelKind::ActivationCountBased => "activation-count",
                    }
                ),
                ScenarioSpec::Covert {
                    kind,
                    nbo,
                    symbols,
                    seed: 0xBEEF ^ u64::from(nbo),
                },
            ));
        }
    }
    campaign
}

fn table5(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "table5",
        "Energy overhead of TPRAC (mitigation vs execution-time energy) per threshold",
        "Total overheads of 44.3%/26.1%/10.4%/7.4%/2.6%/1.0% for NRH = 128...4096",
    );
    let suite = profile.suite();
    let setup = MitigationSetup::Tprac {
        tref_rate: TrefRate::None,
        counter_reset: true,
    };
    for &nrh in profile.nrh_sweep() {
        push_perf_matrix(
            &mut campaign,
            profile,
            &suite,
            std::slice::from_ref(&setup),
            nrh,
            PracLevel::One,
            0x7AB1E5 ^ u64::from(nrh),
            &format!("nrh{nrh}/"),
        );
    }
    campaign
}

fn storage(_profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "storage",
        "Storage overhead of the mitigation-queue designs (Section 6.8)",
        "TPRAC's whole-channel cost is a few hundred bytes; the idealised priority queue needs megabytes",
    );
    for (slug, queue) in [
        ("single-entry-frequency", QueueKind::SingleEntryFrequency),
        ("fifo-4", QueueKind::Fifo { capacity: 4 }),
        ("fifo-16", QueueKind::Fifo { capacity: 16 }),
        ("priority", QueueKind::Priority),
    ] {
        campaign.push(Scenario::new(
            slug,
            ScenarioSpec::Storage { queue, banks: 128 },
        ));
    }
    campaign
}

/// Beyond-paper defense sweep: every registered mitigation engine (PRFM and
/// PARA alongside the paper's set) at the headline threshold, so new engines
/// added to `system_sim::mitigation_registry` get campaign coverage and a
/// direct performance comparison against TPRAC.
fn defenses(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "defenses",
        "Defense comparison across every registered mitigation engine at NRH = 1024",
        "TPRAC ~0.966 normalised; PRFM pays its fixed cadence regardless of activity; PARA scales with activation rate",
    );
    let setups: Vec<MitigationSetup> = system_sim::mitigation_registry()
        .into_iter()
        .map(|descriptor| descriptor.setup)
        .filter(|setup| *setup != MitigationSetup::BaselineNoAbo)
        .collect();
    push_perf_matrix(
        &mut campaign,
        profile,
        &profile.suite(),
        &setups,
        1024,
        PracLevel::One,
        0x000F_DEF5,
        "",
    );
    // Cadence sweep for the periodic baseline: denser RFMs cost more.
    let prfm_sweep: Vec<MitigationSetup> = [1u32, 4, 16]
        .into_iter()
        .map(|every_trefi| MitigationSetup::Prfm { every_trefi })
        .collect();
    push_perf_matrix(
        &mut campaign,
        profile,
        &profile.suite(),
        &prfm_sweep,
        1024,
        PracLevel::One,
        0x000F_DEF5,
        "cadence/",
    );
    campaign
}

/// Beyond-paper topology-scaling sweep: every registered mitigation engine
/// across 1, 2 and 4 memory channels — and, along the orthogonal axis, rank
/// counts 1 and 2 on a single channel — with one representative workload per
/// memory-intensity bucket.  Each channel keeps its own mitigation engine
/// and ABO responder (as in hardware), so this campaign answers questions
/// the single-channel registry cannot: how per-channel RFM budgets, TB-RFM
/// stalls, channel interleaving and rank-level parallelism (per-rank tFAW,
/// staggered refresh) compose as the memory system grows.
fn scaling(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "scaling",
        "Topology scaling: every registered mitigation across 1/2/4 channels and 1/2 ranks",
        "Beyond-paper: mitigation slowdowns shrink with channel parallelism; per-channel RFM budgets multiply",
    );
    let buckets = profile.intensity_buckets();
    for channels in [1u32, 2, 4] {
        for descriptor in system_sim::mitigation_registry() {
            for workload in &buckets {
                campaign.push(Scenario::new(
                    format!(
                        "ch{channels}/{}/{}",
                        workload.workload.name, descriptor.slug
                    ),
                    ScenarioSpec::Perf(Box::new(PerfScenario {
                        setup: descriptor.setup.clone(),
                        rowhammer_threshold: 1024,
                        prac_level: PracLevel::One,
                        workload: workload.clone(),
                        instructions_per_core: profile.instructions_per_core,
                        cores: profile.cores,
                        channels,
                        ranks: 0,
                        profile: DeviceProfile::JedecBaseline,
                        attack: profile.attack,
                        seed: 0x5CA_11E5,
                    })),
                ));
            }
        }
    }
    // The rank axis: overriding the paper organisation's 4 ranks down to 1
    // or 2 shrinks bank-level parallelism while the per-rank constraints
    // (tFAW window, refresh stagger under the vendor profiles) bind harder.
    for ranks in [1u32, 2] {
        for descriptor in system_sim::mitigation_registry() {
            for workload in &buckets {
                campaign.push(Scenario::new(
                    format!("rank{ranks}/{}/{}", workload.workload.name, descriptor.slug),
                    ScenarioSpec::Perf(Box::new(PerfScenario {
                        setup: descriptor.setup.clone(),
                        rowhammer_threshold: 1024,
                        prac_level: PracLevel::One,
                        workload: workload.clone(),
                        instructions_per_core: profile.instructions_per_core,
                        cores: profile.cores,
                        channels: 1,
                        ranks,
                        profile: DeviceProfile::JedecBaseline,
                        attack: profile.attack,
                        seed: 0x5CA_11E5,
                    })),
                ));
            }
        }
    }
    campaign
}

/// Beyond-paper adversarial sweep: every registered attack pattern against
/// every registered mitigation engine across the NRH sweep, through the
/// serialized flush+access attacker model.  Each cell reports the per-run
/// security metrics (peak per-row activation count vs `NRH`, aggressor
/// coverage, RFM pressure and the slowdown the defense imposes on the
/// attacker), so "which access pattern defeats which mitigation at which
/// threshold" is one `prac-bench run attacks` away.
fn attacks(profile: &Profile) -> Campaign {
    let mut campaign = Campaign::new(
        "attacks",
        "Adversarial sweep: every registered attack pattern vs every registered mitigation per NRH",
        "Beyond-paper: undefended cells breach NRH; TPRAC holds the peak per-row activation count below every threshold",
    );
    // The quick profile trims the threshold sweep: access budgets scale
    // with NRH × pattern fan-out (see below), so the NRH = 4096 column
    // belongs to the paper-scale profile.
    let thresholds: Vec<u32> = if profile.full {
        profile.nrh_sweep().to_vec()
    } else {
        vec![256, 1024]
    };
    for &nrh in &thresholds {
        for attack in attack_registry() {
            // A breached-or-defended verdict is only meaningful when an
            // *undefended* run of the same budget reaches NRH: grant each
            // cell the pattern's own breach budget plus 25% slack (RFM
            // stalls never consume accesses, so slack only buys margin on
            // the per-row dilution estimate).
            let accesses = attack.kind.accesses_to_breach(nrh) * 5 / 4;
            for mitigation in system_sim::mitigation_registry() {
                campaign.push(Scenario::new(
                    format!("nrh{nrh}/{}/{}", attack.slug, mitigation.slug),
                    ScenarioSpec::Attack {
                        attack: attack.kind,
                        setup: mitigation.setup.clone(),
                        nrh,
                        accesses,
                        profile: DeviceProfile::JedecBaseline,
                        seed: 0x00A7_7ACC ^ u64::from(nrh),
                    },
                ));
            }
        }
    }
    // The on-die ECC sweep: every attack pattern against each ECC-equipped
    // vendor profile, undefended, at the lowest threshold of the sweep.  An
    // undefended run is guaranteed to overshoot NRH, so these cells always
    // exercise the post-breach adjudication (flips corrected vs escaped).
    let ecc_nrh = thresholds[0];
    for device_profile in DeviceProfile::registry() {
        if device_profile.on_die_ecc().is_none() {
            continue;
        }
        for attack in attack_registry() {
            let accesses = attack.kind.accesses_to_breach(ecc_nrh) * 5 / 4;
            campaign.push(Scenario::new(
                format!("ecc/{}/{}", device_profile.slug(), attack.slug),
                ScenarioSpec::Attack {
                    attack: attack.kind,
                    setup: MitigationSetup::BaselineNoAbo,
                    nrh: ecc_nrh,
                    accesses,
                    profile: device_profile,
                    seed: 0x00A7_7ACC ^ u64::from(ecc_nrh),
                },
            ));
        }
    }
    campaign
}

fn reset_slug(counter_reset: bool) -> &'static str {
    if counter_reset {
        "reset"
    } else {
        "noreset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_ten_campaigns_with_unique_names() {
        let campaigns = all_campaigns(&Profile::quick());
        assert!(campaigns.len() >= 10, "{} campaigns", campaigns.len());
        let mut names = std::collections::HashSet::new();
        for campaign in &campaigns {
            assert!(
                names.insert(campaign.name.clone()),
                "duplicate {}",
                campaign.name
            );
            assert!(!campaign.scenarios.is_empty(), "{} is empty", campaign.name);
        }
    }

    #[test]
    fn scenario_names_are_unique_within_each_campaign() {
        for profile in [Profile::quick(), Profile::full()] {
            for campaign in all_campaigns(&profile) {
                let mut names = std::collections::HashSet::new();
                for scenario in &campaign.scenarios {
                    assert!(
                        names.insert(scenario.name.clone()),
                        "duplicate scenario {} in {}",
                        scenario.name,
                        campaign.name
                    );
                }
            }
        }
    }

    #[test]
    fn quick_and_full_profiles_produce_different_cache_keys() {
        let quick = find_campaign("fig10", &Profile::quick()).unwrap();
        let full = find_campaign("fig10", &Profile::full()).unwrap();
        assert_ne!(quick.scenarios[0].key(), full.scenarios[0].key());
    }

    #[test]
    fn fig10_covers_the_quick_suite_times_three_setups() {
        let campaign = find_campaign("fig10", &Profile::quick()).unwrap();
        assert_eq!(campaign.scenarios.len(), 9 * 3);
    }

    #[test]
    fn attacks_campaign_crosses_both_registries_per_threshold() {
        let attacks = attack_registry().len();
        let mitigations = system_sim::mitigation_registry().len();
        let ecc_profiles = DeviceProfile::registry()
            .into_iter()
            .filter(|p| p.on_die_ecc().is_some())
            .count();
        let campaign = find_campaign("attacks", &Profile::quick()).unwrap();
        assert_eq!(
            campaign.scenarios.len(),
            attacks * mitigations * 2 + ecc_profiles * attacks
        );
        let full = find_campaign("attacks", &Profile::full()).unwrap();
        assert_eq!(
            full.scenarios.len(),
            attacks * mitigations * Profile::full().nrh_sweep().len() + ecc_profiles * attacks
        );
        assert!(attacks >= 6, "{attacks} registered attack patterns");
        // Every cell's budget is at least the pattern's breach budget, so
        // an undefended run can genuinely reach NRH.
        for scenario in &campaign.scenarios {
            let ScenarioSpec::Attack {
                attack,
                nrh,
                accesses,
                ..
            } = &scenario.spec
            else {
                panic!("{} is not an attack cell", scenario.name);
            };
            assert!(
                *accesses >= attack.accesses_to_breach(*nrh),
                "{}: starved budget",
                scenario.name
            );
        }
        // Every cell is an Attack spec naming both sides.
        for scenario in &campaign.scenarios {
            assert!(
                matches!(scenario.spec, ScenarioSpec::Attack { .. }),
                "{} is not an attack cell",
                scenario.name
            );
        }
    }

    #[test]
    fn attacks_campaign_includes_every_ecc_profile() {
        let campaign = find_campaign("attacks", &Profile::quick()).unwrap();
        for device_profile in DeviceProfile::registry() {
            if device_profile.on_die_ecc().is_none() {
                continue;
            }
            let cells = campaign
                .scenarios
                .iter()
                .filter(|s| {
                    matches!(
                        &s.spec,
                        ScenarioSpec::Attack { profile, .. } if *profile == device_profile
                    )
                })
                .count();
            assert_eq!(
                cells,
                attack_registry().len(),
                "{} should face every attack",
                device_profile.slug()
            );
        }
    }

    #[test]
    fn scaling_campaign_sweeps_ranks_alongside_channels() {
        let campaign = find_campaign("scaling", &Profile::quick()).unwrap();
        let mitigations = system_sim::mitigation_registry().len();
        let buckets = Profile::quick().intensity_buckets().len();
        assert_eq!(campaign.scenarios.len(), (3 + 2) * mitigations * buckets);
        for ranks in [1u32, 2] {
            let cells: Vec<_> = campaign
                .scenarios
                .iter()
                .filter(|s| s.name.starts_with(&format!("rank{ranks}/")))
                .collect();
            assert_eq!(cells.len(), mitigations * buckets);
            for scenario in cells {
                let ScenarioSpec::Perf(perf) = &scenario.spec else {
                    panic!("{} is not a perf cell", scenario.name);
                };
                assert_eq!(perf.ranks, ranks);
                assert_eq!(perf.channels, 1);
            }
        }
        // The channel cells keep ranks = 0 (no override) so their
        // pre-existing cache keys survive the rank dimension.
        for scenario in &campaign.scenarios {
            if scenario.name.starts_with("ch") {
                let ScenarioSpec::Perf(perf) = &scenario.spec else {
                    panic!("{} is not a perf cell", scenario.name);
                };
                assert_eq!(perf.ranks, 0, "{}", scenario.name);
                assert_eq!(perf.profile, DeviceProfile::JedecBaseline);
            }
        }
    }

    #[test]
    fn profile_attack_knob_threads_into_perf_cells() {
        let mut profile = Profile::quick();
        profile.attack = Some(AttackKind::HalfDouble);
        let campaign = find_campaign("fig10", &profile).unwrap();
        for scenario in &campaign.scenarios {
            let ScenarioSpec::Perf(perf) = &scenario.spec else {
                panic!("fig10 holds perf cells");
            };
            assert_eq!(perf.attack, Some(AttackKind::HalfDouble));
        }
        // And the keys differ from the benign profile's.
        let benign = find_campaign("fig10", &Profile::quick()).unwrap();
        assert_ne!(campaign.scenarios[0].key(), benign.scenarios[0].key());
    }
}
