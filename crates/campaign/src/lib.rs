//! # campaign
//!
//! Declarative scenario sweeps, parallel execution, incremental result
//! caching and the unified `prac-bench` CLI for the paper's evaluation
//! matrix.
//!
//! The paper's evaluation is a matrix of scenarios — mitigation policy ×
//! RowHammer threshold × PRAC level × workload — that this crate models as
//! data instead of code:
//!
//! * [`scenario`] — the serialisable [`Scenario`] / [`Campaign`] model and
//!   the stable FNV-1a cache key derived from a scenario's canonical JSON,
//! * [`exec`] — turns a [`ScenarioSpec`] into a flat metric map (running
//!   full-system simulations, attack instances or analytical models),
//! * [`cache`] — the [`ResultCache`]: a thin adapter over the
//!   content-addressed `result-store` crate (record identity = cache-key
//!   preimage), so re-runs only execute changed scenarios and result sets
//!   move between machines as store bundles,
//! * [`artifact`] — the [`ArtifactStore`] writing per-campaign
//!   `results.json` / `results.csv` under `target/campaigns/`,
//! * [`runner`] — the [`CampaignRunner`] fanning cache misses out over the
//!   work-stealing pool with per-scenario timing and progress,
//! * [`registry`] — every paper figure/table as a registered campaign
//!   (`fig03` … `fig14`, `table2`, `table5`, `storage`) plus the
//!   beyond-paper sweeps (`defenses`, `scaling`, and the adversarial
//!   `attacks` matrix crossing the attack and mitigation registries),
//! * [`serve`] — the `prac-bench serve` query service: newline-delimited
//!   JSON over TCP / Unix socket, serve-from-store on hit, run-on-miss,
//! * [`cli`] — the `prac-bench` command line (`list`, `mitigations`,
//!   `attacks`, `run <name>`, `run --all`, `serve`, `query`, `store …`).
//!
//! ```no_run
//! use campaign::registry::{find_campaign, Profile};
//! use campaign::runner::CampaignRunner;
//!
//! let campaign = find_campaign("fig10", &Profile::quick()).unwrap();
//! let summary = CampaignRunner::new().run(&campaign).unwrap();
//! assert_eq!(summary.records.len(), campaign.scenarios.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod cli;
pub mod exec;
pub mod registry;
pub mod runner;
pub mod scenario;
pub mod serve;
pub mod trajectory;

pub use artifact::{ArtifactPaths, ArtifactStore};
pub use cache::{CachedResult, ResultCache};
pub use registry::{all_campaigns, find_campaign, Profile};
pub use runner::{CampaignRunner, RunSummary, ScenarioRecord};
pub use scenario::{Campaign, PerfScenario, Scenario, ScenarioSpec};
pub use serve::Server;
