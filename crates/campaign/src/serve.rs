//! `prac-bench serve`: the result store as a long-running query service.
//!
//! The server speaks newline-delimited JSON (one request object per line,
//! one response object per line) over TCP or — on Unix — a Unix domain
//! socket, so `nc`, shell scripts and future sweep workers can all talk to
//! it without a client library:
//!
//! ```text
//! → {"op":"ping"}
//! ← {"ok":true,"pong":true}
//! → {"op":"query","spec":{"kind":"solve_window","nrh":4096,"counter_reset":true}}
//! ← {"ok":true,"hit":false,"key":"…16 hex…","metrics":{…},"wall_ms":0.2}
//! → {"op":"query","spec":{"kind":"solve_window","nrh":4096,"counter_reset":true}}
//! ← {"ok":true,"hit":true,"key":"…same…","metrics":{…},"wall_ms":0.2}
//! → {"op":"shutdown"}
//! ← {"ok":true,"stopping":true}
//! ```
//!
//! Supported ops: `ping`, `stats`, `get` (by 16-hex-digit key), `query`
//! (by canonical spec JSON; serve-from-store on hit, run-on-miss via the
//! campaign exec path and persist), and `shutdown` (clean stop: the accept
//! loop drains and the store index is flushed).  Hits never construct a
//! simulation — the reply is an index probe plus one segment read.

use std::io::{self, BufRead, BufReader};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde_json::{Map, Value};
use system_sim::EngineKind;

use crate::cache::{CachedResult, ResultCache};
use crate::exec::execute_with;
use crate::scenario::{Scenario, ScenarioSpec};

/// How long the accept loop sleeps between polls of a quiet listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on connection streams: an idle handler wakes this often to
/// check the shutdown flag, so joining in-flight handlers at shutdown never
/// blocks on a silent client.
const READ_POLL: Duration = Duration::from_millis(50);

/// The query service: a [`ResultCache`] plus the engine used to run misses.
///
/// Cloning is cheap (the cache, the shutdown flag and the handler registry
/// are shared), which is how per-connection threads get their handle.
#[derive(Debug, Clone)]
pub struct Server {
    cache: ResultCache,
    engine: EngineKind,
    shutdown: Arc<AtomicBool>,
    /// Join handles of spawned connection threads.  The serve loop joins
    /// every live handler before the shutdown flush so an in-flight miss
    /// run is persisted (and its reply delivered) rather than lost.
    handlers: Arc<Mutex<Vec<JoinHandle<io::Result<()>>>>>,
    /// Test hook: artificial delay inserted before a miss run.
    miss_delay: Option<Duration>,
}

impl Server {
    /// Creates a server answering queries from (and persisting misses to)
    /// `cache`, running misses under `engine`.
    #[must_use]
    pub fn new(cache: ResultCache, engine: EngineKind) -> Self {
        Self {
            cache,
            engine,
            shutdown: Arc::new(AtomicBool::new(false)),
            handlers: Arc::new(Mutex::new(Vec::new())),
            miss_delay: None,
        }
    }

    /// Test hook: sleeps for `delay` before executing a query miss, making
    /// shutdown-vs-in-flight-miss races reproducible.  Not part of the
    /// public protocol surface.
    #[doc(hidden)]
    #[must_use]
    pub fn with_miss_delay(mut self, delay: Duration) -> Self {
        self.miss_delay = Some(delay);
        self
    }

    /// The shared shutdown flag: setting it stops the serve loop at its next
    /// poll (the `shutdown` protocol op sets it for you).
    #[must_use]
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves connections from `listener` until shutdown, joins every
    /// in-flight connection handler, then flushes the store.  Bind the
    /// listener yourself so `127.0.0.1:0` tests can learn the resolved port
    /// before serving.
    ///
    /// # Errors
    ///
    /// Propagates listener errors other than the non-blocking wait, and the
    /// final store flush error.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_POLL))?;
                    let server = self.clone();
                    self.track(std::thread::spawn(move || server.handle_connection(stream)));
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(error) => return Err(error),
            }
        }
        self.join_handlers();
        self.cache.flush()
    }

    /// Serves connections from a Unix domain socket listener until shutdown,
    /// joins every in-flight connection handler, then flushes the store.
    ///
    /// # Errors
    ///
    /// Propagates listener errors other than the non-blocking wait, and the
    /// final store flush error.
    #[cfg(unix)]
    pub fn serve_unix(&self, listener: &std::os::unix::net::UnixListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(READ_POLL))?;
                    let server = self.clone();
                    self.track(std::thread::spawn(move || server.handle_connection(stream)));
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(error) => return Err(error),
            }
        }
        self.join_handlers();
        self.cache.flush()
    }

    /// Registers a connection-handler thread, pruning finished ones so a
    /// long-lived server does not accumulate dead handles.
    fn track(&self, handle: JoinHandle<io::Result<()>>) {
        let mut handlers = self.handlers.lock().expect("handler registry poisoned");
        handlers.retain(|h| !h.is_finished());
        handlers.push(handle);
    }

    /// Joins every tracked connection handler.  Called after the accept
    /// loop exits and before the store flush: an in-flight miss run gets to
    /// persist its result and deliver its reply before the server exits.
    fn join_handlers(&self) {
        let handlers =
            std::mem::take(&mut *self.handlers.lock().expect("handler registry poisoned"));
        for handle in handlers {
            // A failed or panicked handler must not abort the final flush.
            let _ = handle.join();
        }
    }

    fn handle_connection<S: io::Read + io::Write>(&self, stream: S) -> io::Result<()> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // client hung up
                Ok(_) => {}
                Err(error)
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Read timed out.  Any bytes already received stay
                    // appended to `line` and the next read continues the
                    // same request, so a slow writer is never corrupted —
                    // but once shutdown begins an idle connection must
                    // return promptly so the serve loop can join us.
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(error) => return Err(error),
            }
            if line.trim().is_empty() {
                line.clear();
                continue;
            }
            let (response, stop) = self.respond(line.trim());
            line.clear();
            let mut text = response.to_string();
            text.push('\n');
            reader.get_mut().write_all(text.as_bytes())?;
            reader.get_mut().flush()?;
            if stop {
                self.shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
    }

    /// Answers one protocol line.  Returns the response and whether this op
    /// requested shutdown.
    #[must_use]
    pub fn respond(&self, line: &str) -> (Value, bool) {
        let request = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(error) => return (error_reply(&format!("bad request JSON: {error}")), false),
        };
        match request.get("op").and_then(Value::as_str) {
            Some("ping") => {
                let mut reply = ok_reply();
                reply.insert("pong".into(), true.into());
                (Value::Object(reply), false)
            }
            Some("stats") => (self.stats_reply(), false),
            Some("get") => (self.get_reply(&request), false),
            Some("query") => (self.query_reply(&request), false),
            Some("shutdown") => {
                let mut reply = ok_reply();
                reply.insert("stopping".into(), true.into());
                (Value::Object(reply), true)
            }
            Some(other) => (error_reply(&format!("unknown op `{other}`")), false),
            None => (error_reply("request missing string `op`"), false),
        }
    }

    fn stats_reply(&self) -> Value {
        let stats = self.cache.store_handle().stats();
        let mut reply = ok_reply();
        reply.insert("live_records".into(), stats.live_records.into());
        reply.insert("total_records".into(), stats.total_records.into());
        reply.insert("superseded_records".into(), stats.superseded_records.into());
        reply.insert("corrupt_lines".into(), stats.corrupt_lines.into());
        reply.insert("segments".into(), stats.segments.into());
        reply.insert("bytes".into(), stats.bytes.into());
        reply.insert("dedup_ratio".into(), stats.dedup_ratio().into());
        Value::Object(reply)
    }

    fn get_reply(&self, request: &Value) -> Value {
        let Some(key) = request
            .get("key")
            .and_then(Value::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        else {
            return error_reply("`get` needs a 16-hex-digit `key`");
        };
        let mut reply = ok_reply();
        reply.insert("key".into(), format!("{key:016x}").into());
        match self.cache.store_handle().get(key) {
            Some(record) => {
                reply.insert("hit".into(), true.into());
                reply.insert("payload".into(), record.payload);
            }
            None => {
                reply.insert("hit".into(), false.into());
            }
        }
        Value::Object(reply)
    }

    /// The tentpole op: serve-from-store on hit, run-on-miss + persist.
    fn query_reply(&self, request: &Value) -> Value {
        let Some(spec_json) = request.get("spec") else {
            return error_reply("`query` needs a `spec` object");
        };
        let spec = match ScenarioSpec::from_json(spec_json) {
            Ok(spec) => spec,
            Err(error) => return error_reply(&format!("bad spec: {error}")),
        };
        let scenario = Scenario::new("serve", spec);
        let mut reply = ok_reply();
        reply.insert("key".into(), format!("{:016x}", scenario.key()).into());
        // Hit path: index probe + one segment read, no simulation.
        if let Some(cached) = self.cache.lookup(&scenario) {
            reply.insert("hit".into(), true.into());
            reply.insert("metrics".into(), Value::Object(cached.metrics));
            reply.insert("wall_ms".into(), cached.wall_ms.into());
            return Value::Object(reply);
        }
        // Miss path: run through the campaign exec path and persist, so the
        // next query (from anyone) hits.
        if let Some(delay) = self.miss_delay {
            std::thread::sleep(delay);
        }
        let started = Instant::now();
        let metrics = execute_with(&scenario.spec, self.engine);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let result = CachedResult {
            metrics: metrics.clone(),
            wall_ms,
        };
        if let Err(error) = self.cache.store(&scenario, &result) {
            return error_reply(&format!("executed but failed to persist: {error}"));
        }
        reply.insert("hit".into(), false.into());
        reply.insert("metrics".into(), Value::Object(metrics));
        reply.insert("wall_ms".into(), wall_ms.into());
        Value::Object(reply)
    }
}

fn ok_reply() -> Map {
    let mut map = Map::new();
    map.insert("ok".into(), true.into());
    map
}

fn error_reply(message: &str) -> Value {
    let mut map = Map::new();
    map.insert("ok".into(), false.into());
    map.insert("error".into(), message.into());
    Value::Object(map)
}

/// Client-side helpers for the serve protocol (used by `prac-bench query`
/// and tests).
pub mod client {
    use super::*;

    /// Sends one request line over TCP and returns the parsed response.
    ///
    /// # Errors
    ///
    /// Propagates connect/write/read errors; a non-JSON response becomes
    /// `InvalidData`.
    pub fn request_tcp(addr: impl ToSocketAddrs, request: &Value) -> io::Result<Value> {
        let stream = TcpStream::connect(addr)?;
        roundtrip(stream, request)
    }

    /// Sends one request line over a Unix domain socket and returns the
    /// parsed response.
    ///
    /// # Errors
    ///
    /// Propagates connect/write/read errors; a non-JSON response becomes
    /// `InvalidData`.
    #[cfg(unix)]
    pub fn request_unix(path: &std::path::Path, request: &Value) -> io::Result<Value> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        roundtrip(stream, request)
    }

    fn roundtrip<S: io::Read + io::Write>(mut stream: S, request: &Value) -> io::Result<Value> {
        let mut line = request.to_string();
        line.push('\n');
        stream.write_all(line.as_bytes())?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        serde_json::from_str(reply.trim())
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("prac-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn server(tag: &str) -> Server {
        Server::new(
            ResultCache::open(temp_root(tag)).unwrap(),
            EngineKind::default(),
        )
    }

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn ping_stats_and_errors_answer_inline() {
        let server = server("inline");
        let (reply, stop) = server.respond(r#"{"op":"ping"}"#);
        assert_eq!(reply.get("pong"), Some(&Value::Bool(true)));
        assert!(!stop);
        let (reply, _) = server.respond(r#"{"op":"stats"}"#);
        assert_eq!(reply.get("live_records").and_then(Value::as_u64), Some(0));
        let (reply, _) = server.respond("not json");
        assert_eq!(reply.get("ok"), Some(&Value::Bool(false)));
        let (reply, _) = server.respond(r#"{"op":"warp"}"#);
        assert!(reply
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("warp"));
        let (_, stop) = server.respond(r#"{"op":"shutdown"}"#);
        assert!(stop);
    }

    #[test]
    fn query_misses_then_hits_with_identical_metrics() {
        let server = server("query");
        let request = parse(
            r#"{"op":"query","spec":{"kind":"solve_window","counter_reset":true,"nrh":4096}}"#,
        );
        let line = request.to_string();
        let (first, _) = server.respond(&line);
        assert_eq!(first.get("hit"), Some(&Value::Bool(false)), "{first}");
        let (second, _) = server.respond(&line);
        assert_eq!(second.get("hit"), Some(&Value::Bool(true)), "{second}");
        assert_eq!(first.get("key"), second.get("key"));
        assert_eq!(first.get("metrics"), second.get("metrics"));
        // And `get` by the returned key finds the persisted record.
        let key = first.get("key").and_then(Value::as_str).unwrap();
        let (got, _) = server.respond(&format!(r#"{{"op":"get","key":"{key}"}}"#));
        assert_eq!(got.get("hit"), Some(&Value::Bool(true)));
    }

    #[test]
    fn tcp_roundtrip_and_clean_shutdown() {
        let server = server("tcp");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serving = {
            let server = server.clone();
            std::thread::spawn(move || server.serve_tcp(&listener))
        };
        let reply = client::request_tcp(addr, &parse(r#"{"op":"ping"}"#)).unwrap();
        assert_eq!(reply.get("pong"), Some(&Value::Bool(true)));
        let reply = client::request_tcp(addr, &parse(r#"{"op":"shutdown"}"#)).unwrap();
        assert_eq!(reply.get("stopping"), Some(&Value::Bool(true)));
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_waits_for_inflight_miss_and_persists_it() {
        // Regression: handlers used to be detached, so a protocol shutdown
        // could flush the store and exit while a miss run was still
        // executing — losing the computed result and the client's reply.
        let root = temp_root("race");
        let server = Server::new(
            ResultCache::open(root.clone()).unwrap(),
            EngineKind::default(),
        )
        .with_miss_delay(Duration::from_millis(300));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serving = {
            let server = server.clone();
            std::thread::spawn(move || server.serve_tcp(&listener))
        };
        let spec_json = r#"{"kind":"solve_window","counter_reset":true,"nrh":4096}"#;
        let query = {
            let request = parse(&format!(r#"{{"op":"query","spec":{spec_json}}}"#));
            std::thread::spawn(move || client::request_tcp(addr, &request))
        };
        // Let the miss start (the handler sleeps 300 ms before executing),
        // then race a shutdown against it.
        std::thread::sleep(Duration::from_millis(100));
        let reply = client::request_tcp(addr, &parse(r#"{"op":"shutdown"}"#)).unwrap();
        assert_eq!(reply.get("stopping"), Some(&Value::Bool(true)));
        serving.join().unwrap().unwrap();
        // The racing query still received a real reply...
        let reply = query.join().unwrap().unwrap();
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)), "{reply}");
        assert_eq!(reply.get("hit"), Some(&Value::Bool(false)));
        assert!(reply.get("metrics").is_some());
        // ...and its result was persisted before the shutdown flush.
        let reopened = ResultCache::open(root).unwrap();
        let spec = ScenarioSpec::from_json(&parse(spec_json)).unwrap();
        let scenario = Scenario::new("serve", spec);
        assert!(
            reopened.lookup(&scenario).is_some(),
            "in-flight miss result must survive shutdown"
        );
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_roundtrip() {
        let server = server("unix");
        let path = std::env::temp_dir().join(format!("prac-serve-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let serving = {
            let server = server.clone();
            std::thread::spawn(move || server.serve_unix(&listener))
        };
        let reply = client::request_unix(&path, &parse(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
        let reply = client::request_unix(&path, &parse(r#"{"op":"shutdown"}"#)).unwrap();
        assert_eq!(reply.get("stopping"), Some(&Value::Bool(true)));
        serving.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
