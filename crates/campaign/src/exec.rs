//! Scenario execution: turns a declarative [`ScenarioSpec`] into a flat
//! metric map.
//!
//! Execution is a pure function of the spec (every random stream is seeded
//! from fields of the spec), which is what makes cached results valid across
//! runs: same spec → same key → same metrics, bit for bit.

use dram_sim::device::DramDeviceConfig;
use dram_sim::DeviceProfile;
use prac_core::config::MitigationPolicy;
use prac_core::overhead::{rfm_interval_register_bits, StorageModel};
use prac_core::security::{figure7_windows, CounterResetPolicy, SecurityAnalysis};
use prac_core::timing::DramTimingSummary;
use prac_core::tprac::TpracConfig;
use pracleak::adversary::run_adversary;
use pracleak::characterize::run_characterization;
use pracleak::covert::run_covert_channel;
use pracleak::latency::SpikeDetector;
use pracleak::setup::AttackSetup;
use pracleak::side_channel::SideChannelExperiment;
use serde_json::{Map, Value};
use system_sim::{
    energy_overhead_for, run_workload_normalized, AttackKind, EngineKind, ExperimentConfig,
    MitigationSetup,
};
use workloads::MemoryIntensity;

use crate::scenario::ScenarioSpec;

/// Banks blocked by one all-bank RFM in the energy model (one DDR5 channel).
const BANKS_PER_RFM: u32 = 128;

/// Runs a scenario with the default (event-driven) engine and returns its
/// metrics as a flat JSON object.
#[must_use]
pub fn execute(spec: &ScenarioSpec) -> Map {
    execute_with(spec, EngineKind::default())
}

/// Runs a scenario under an explicit simulation engine.
///
/// The engine is an execution knob, not part of the scenario's identity: the
/// two engines produce bit-identical results (enforced by the differential
/// suite), so cached metrics remain valid across engines and the engine is
/// deliberately excluded from the cache key.
#[must_use]
pub fn execute_with(spec: &ScenarioSpec, engine: EngineKind) -> Map {
    execute_sharded(spec, engine, 1)
}

/// [`execute_with`] with an explicit worker-thread count for parallel
/// channel stepping.
///
/// Like the engine, the thread count is an execution knob: every value
/// produces bit-identical metrics (enforced by the thread-count race in the
/// differential suite), so cached results remain valid across thread counts
/// and `sim_threads` is deliberately excluded from the cache key.
#[must_use]
pub fn execute_sharded(spec: &ScenarioSpec, engine: EngineKind, sim_threads: usize) -> Map {
    match spec {
        ScenarioSpec::Perf(perf) => execute_perf(perf, engine, sim_threads),
        ScenarioSpec::AboLatency {
            prac_level,
            nbo,
            window_ns,
        } => execute_abo_latency(*prac_level, *nbo, *window_ns),
        ScenarioSpec::SideChannel {
            nbo,
            encryptions,
            k0,
            p0,
            defended,
            seed,
        } => execute_side_channel(*nbo, *encryptions, *k0, *p0, *defended, *seed),
        ScenarioSpec::TmaxSeries { nbo, counter_reset } => {
            execute_tmax_series(*nbo, *counter_reset)
        }
        ScenarioSpec::SolveWindow { nrh, counter_reset } => {
            execute_solve_window(*nrh, *counter_reset)
        }
        ScenarioSpec::Covert {
            kind,
            nbo,
            symbols,
            seed,
        } => execute_covert(*kind, *nbo, *symbols, *seed),
        ScenarioSpec::Storage { queue, banks } => execute_storage(*queue, *banks),
        ScenarioSpec::Attack {
            attack,
            setup,
            nrh,
            accesses,
            profile,
            seed,
        } => execute_attack(attack, setup, *nrh, *accesses, *profile, *seed),
    }
}

/// The [`ExperimentConfig`] a perf cell resolves to, optionally with its
/// setup swapped (the prefix-group executor derives the baseline and each
/// protected leg from the same cell template).
fn perf_experiment_config(
    perf: &crate::scenario::PerfScenario,
    setup: MitigationSetup,
    engine: EngineKind,
    sim_threads: usize,
) -> ExperimentConfig {
    ExperimentConfig {
        rowhammer_threshold: perf.rowhammer_threshold,
        prac_level: perf.prac_level,
        setup,
        instructions_per_core: perf.instructions_per_core,
        cores: perf.cores,
        channels: perf.channels.max(1),
        ranks: perf.ranks,
        profile: perf.profile,
        attack: perf.attack,
        engine,
        sim_threads,
    }
}

/// The deterministic result of a perf cell that cannot be configured as
/// specified (e.g. no safe TB-Window for the threshold): the failure is
/// recorded as the cell's result instead of silently running a different
/// configuration.
fn perf_config_error(
    perf: &crate::scenario::PerfScenario,
    error: &prac_core::error::ConfigError,
) -> Map {
    let mut m = Map::new();
    m.insert("setup".into(), perf.setup.label().into());
    m.insert("nrh".into(), perf.rowhammer_threshold.into());
    m.insert("completed".into(), false.into());
    m.insert("config_error".into(), error.to_string().into());
    m
}

fn execute_perf(
    perf: &crate::scenario::PerfScenario,
    engine: EngineKind,
    sim_threads: usize,
) -> Map {
    let config = perf_experiment_config(perf, perf.setup.clone(), engine, sim_threads);
    let (normalized, protected, baseline) =
        match run_workload_normalized(&config, &perf.workload.workload, perf.seed) {
            Ok(outcome) => outcome,
            Err(error) => return perf_config_error(perf, &error),
        };
    perf_metrics(perf, normalized, &protected, &baseline)
}

/// Renders one perf cell's flat metric map from its protected and baseline
/// runs.  Both the cold path ([`execute_perf`]) and the prefix-group path
/// ([`execute_perf_group`]) feed this exact function, so grouped execution
/// cannot drift from the per-cell schema.
fn perf_metrics(
    perf: &crate::scenario::PerfScenario,
    normalized: f64,
    protected: &system_sim::SystemResult,
    baseline: &system_sim::SystemResult,
) -> Map {
    let energy = energy_overhead_for(baseline, protected, BANKS_PER_RFM);

    // Metric fields here are additive-only without a SIM_REVISION bump:
    // entries cached by an older binary stay valid (same simulation, same
    // key) but lack newer informational fields, so artifact consumers must
    // treat absent fields as "not recorded", not zero.
    let mut m = Map::new();
    m.insert(
        "workload".into(),
        perf.workload.workload.name.as_str().into(),
    );
    m.insert(
        "intensity".into(),
        match perf.workload.intensity {
            MemoryIntensity::High => "high",
            MemoryIntensity::Medium => "medium",
            MemoryIntensity::Low => "low",
        }
        .into(),
    );
    m.insert("group".into(), perf.workload.group.to_string().into());
    m.insert("setup".into(), perf.setup.label().into());
    m.insert("nrh".into(), perf.rowhammer_threshold.into());
    m.insert("normalized_performance".into(), normalized.into());
    m.insert("ipc_protected".into(), protected.total_ipc().into());
    m.insert("ipc_baseline".into(), baseline.total_ipc().into());
    m.insert("tb_rfms".into(), protected.controller_stats.tb_rfms.into());
    m.insert(
        "abo_rfms".into(),
        protected.controller_stats.abo_rfms.into(),
    );
    m.insert(
        "acb_rfms".into(),
        protected.controller_stats.acb_rfms.into(),
    );
    m.insert(
        "periodic_rfms".into(),
        protected.controller_stats.periodic_rfms.into(),
    );
    m.insert(
        "para_rfms".into(),
        protected.controller_stats.para_rfms.into(),
    );
    m.insert(
        "execution_time_protected_ns".into(),
        protected.execution_time_ns().into(),
    );
    m.insert(
        "execution_time_baseline_ns".into(),
        baseline.execution_time_ns().into(),
    );
    m.insert(
        "energy_mitigation_overhead".into(),
        energy.mitigation.into(),
    );
    m.insert(
        "energy_non_mitigation_overhead".into(),
        energy.non_mitigation.into(),
    );
    m.insert("energy_total_overhead".into(), energy.total.into());
    m.insert(
        "completed".into(),
        (protected.completed && baseline.completed).into(),
    );
    // Per-channel breakdown of the protected run, so multi-channel
    // campaigns can see how demand traffic and mitigation budgets spread
    // across controllers.  Emitted only for multi-channel cells: a
    // single-channel cell keeps the exact metric set it had before the
    // channel dimension existed, so cached and fresh results of the same
    // (key-stable) scenario never disagree on their schema.
    if perf.channels > 1 {
        m.insert("channels".into(), perf.channels.into());
        for per_channel in &protected.channel_stats {
            let prefix = format!("ch{}", per_channel.channel);
            m.insert(
                format!("{prefix}_reads"),
                per_channel.controller.reads_completed.into(),
            );
            m.insert(
                format!("{prefix}_writes"),
                per_channel.controller.writes_completed.into(),
            );
            m.insert(
                format!("{prefix}_rfms"),
                per_channel.controller.total_rfms().into(),
            );
            m.insert(
                format!("{prefix}_activations"),
                per_channel.dram.activations.into(),
            );
            m.insert(
                format!("{prefix}_row_hit_rate"),
                per_channel.controller.row_hit_rate().into(),
            );
        }
    }
    // Rank-override and device-profile cells name their topology.  Emitted
    // only when non-default, for the same schema-stability reason as the
    // per-channel block above.
    if perf.ranks > 0 {
        m.insert("ranks".into(), perf.ranks.into());
    }
    if perf.profile != DeviceProfile::JedecBaseline {
        m.insert("device_profile".into(), perf.profile.slug().into());
    }
    // Adversarial co-runner cells add their security headline.  Emitted
    // only when the attack knob is set, for the same schema-stability
    // reason as the per-channel block above.
    if let Some(attack) = &perf.attack {
        m.insert("attack".into(), attack.slug().into());
        m.insert(
            "max_row_activations".into(),
            protected.dram_stats.max_row_counter.into(),
        );
        m.insert(
            "nrh_breached".into(),
            (protected.dram_stats.max_row_counter >= perf.rowhammer_threshold).into(),
        );
    }
    m
}

/// Executes a group of perf cells that differ only in their mitigation
/// setup, sharing as much simulation work as bit-identity allows.  Returns
/// one metric map per input cell, in input order, each byte-identical to
/// what [`execute`] would have produced cold.
///
/// Shared work, from cheapest to most aggressive:
///
/// 1. **Traces** are generated once — they depend on every sweep parameter
///    *except* the setup.
/// 2. **The baseline leg** (the normalisation denominator every cell needs)
///    runs once instead of once per cell.
/// 3. **The common prefix** of the protected legs is simulated once under
///    the mitigation-free baseline configuration, paused at the group's
///    minimum [`system_sim::fork_horizon`], and forked per cell: each fork
///    is refitted to its cell's mitigation configuration and resumed.
///
/// Cells whose horizon is zero (PARA can mitigate on the very first
/// activation) run their protected leg cold from the shared traces, and any
/// fork whose prefix turns out not to be mitigation-free falls back to a
/// cold run — sharing is a pure wall-clock optimisation, never a semantic
/// one.
#[must_use]
pub fn execute_perf_group(
    perfs: &[&crate::scenario::PerfScenario],
    engine: EngineKind,
) -> Vec<Map> {
    execute_perf_group_sharded(perfs, engine, 1)
}

/// [`execute_perf_group`] with an explicit worker-thread count for parallel
/// channel stepping (an execution knob like the engine — every value yields
/// byte-identical metric maps).
#[must_use]
pub fn execute_perf_group_sharded(
    perfs: &[&crate::scenario::PerfScenario],
    engine: EngineKind,
    sim_threads: usize,
) -> Vec<Map> {
    use system_sim::{fork_horizon, workload_traces, PrefixOutcome, SystemSimulation};

    if perfs.len() <= 1 {
        return perfs
            .iter()
            .map(|perf| execute_perf(perf, engine, sim_threads))
            .collect();
    }
    let template = perfs[0];
    let baseline_config = perf_experiment_config(
        template,
        MitigationSetup::BaselineNoAbo,
        engine,
        sim_threads,
    );
    let Ok(baseline_system) = baseline_config.build_system_config() else {
        // The baseline itself cannot be configured (e.g. an invalid channel
        // count): every cell fails identically, so record each cold.
        return perfs
            .iter()
            .map(|perf| execute_perf(perf, engine, sim_threads))
            .collect();
    };
    let traces = workload_traces(
        &baseline_config,
        &baseline_system,
        &template.workload.workload,
        template.seed,
    );

    // Resolve every cell up front: its protected system configuration (or
    // the deterministic config-error result) and its fork horizon.
    let mut results: Vec<Option<Map>> = vec![None; perfs.len()];
    let mut legs: Vec<(usize, system_sim::SystemConfig, u64)> = Vec::new();
    for (slot, perf) in perfs.iter().enumerate() {
        if perf.setup == MitigationSetup::BaselineNoAbo {
            // Handled below: the baseline leg doubles as this cell's
            // protected run.
            continue;
        }
        let config = perf_experiment_config(perf, perf.setup.clone(), engine, sim_threads);
        match config.build_system_config() {
            Ok(system) => {
                let horizon = fork_horizon(&system.device);
                legs.push((slot, system, horizon));
            }
            Err(error) => results[slot] = Some(perf_config_error(perf, &error)),
        }
    }

    // Run the shared baseline leg, pausing at the shortest fork horizon so
    // the paused state can seed every forkable protected leg.
    let pause_at = legs
        .iter()
        .filter(|(_, _, horizon)| *horizon > 0)
        .map(|(_, _, horizon)| *horizon)
        .min();
    let (baseline, prefix) = match pause_at {
        Some(pause) => {
            match SystemSimulation::new(baseline_system.clone(), traces.clone()).run_until(pause) {
                PrefixOutcome::Paused(prefix) if prefix.is_mitigation_free() => {
                    // The baseline leg itself resumes from the prefix (it
                    // *is* the prefix's configuration, so no refit needed).
                    (prefix.fork().resume(), Some(prefix))
                }
                PrefixOutcome::Paused(prefix) => {
                    // A mitigation fired under the disabled policy — should
                    // be impossible, but sharing must fail safe: finish the
                    // baseline from the prefix and run everything else cold.
                    (prefix.resume(), None)
                }
                // The run ended before the first horizon: the completed
                // result is exactly the cold baseline run.
                PrefixOutcome::Finished(result) => (result, None),
            }
        }
        None => (
            SystemSimulation::new(baseline_system, traces.clone()).run(),
            None,
        ),
    };

    // Protected legs: fork the prefix where the horizon allows, cold
    // otherwise.
    for (slot, system, horizon) in legs {
        let forked = prefix
            .as_ref()
            .filter(|prefix| horizon >= prefix.now() && prefix.now() > 0)
            .map(|prefix| {
                let mut fork = prefix.fork();
                fork.refit_mitigation(&system.device.prac, system.device.tref_every_n_refreshes);
                fork.resume()
            });
        let protected =
            forked.unwrap_or_else(|| SystemSimulation::new(system, traces.clone()).run());
        let normalized = if baseline.total_ipc() > 0.0 {
            protected.total_ipc() / baseline.total_ipc()
        } else {
            0.0
        };
        results[slot] = Some(perf_metrics(perfs[slot], normalized, &protected, &baseline));
    }

    // Baseline cells: the shared baseline run is both of their legs.
    for (slot, perf) in perfs.iter().enumerate() {
        if results[slot].is_none() {
            let normalized = if baseline.total_ipc() > 0.0 {
                baseline.total_ipc() / baseline.total_ipc()
            } else {
                0.0
            };
            results[slot] = Some(perf_metrics(perf, normalized, &baseline, &baseline));
        }
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every cell produced a result"))
        .collect()
}

/// Ticks an `attacks` cell may spend per attacker access before the run is
/// cut off: generous enough that even a fully RFM-stalled serialized
/// attacker finishes, tight enough that a livelocked cell cannot hang a
/// sweep.
const ATTACK_TICKS_PER_ACCESS: u64 = 4_000;

fn execute_attack(
    attack: &AttackKind,
    setup: &MitigationSetup,
    nrh: u32,
    accesses: u64,
    profile: DeviceProfile,
    seed: u64,
) -> Map {
    let mut m = Map::new();
    m.insert("attack".into(), attack.slug().into());
    m.insert("setup".into(), setup.label().into());
    m.insert("nrh".into(), nrh.into());
    m.insert("accesses".into(), accesses.into());
    // Schema stability: baseline cells keep the exact metric set they had
    // before the profile dimension existed (their cache keys are identical).
    if profile != DeviceProfile::JedecBaseline {
        m.insert("device_profile".into(), profile.slug().into());
    }

    // Same bit-identity branch as `ExperimentConfig::build_system_config`:
    // the JEDEC baseline keeps the seed's authored ns summary, vendor
    // profiles derive theirs from the profile's tick-level timing.
    let organization = DramDeviceConfig::paper_default().organization;
    let timing = if profile == DeviceProfile::JedecBaseline {
        DramTimingSummary::ddr5_8000b()
    } else {
        profile.timing().summary(organization.rows_per_bank)
    };
    let resolved = match setup.resolve(nrh, &timing) {
        Ok(resolved) => resolved,
        Err(error) => {
            // Same contract as perf cells: a setup that cannot be
            // configured as specified records the failure deterministically.
            m.insert("completed".into(), false.into());
            m.insert("config_error".into(), error.to_string().into());
            return m;
        }
    };
    let defended = AttackSetup::new(nrh)
        .with_policy(resolved.policy)
        .with_counter_reset(resolved.counter_reset)
        .with_tref_every(resolved.tref_every_n_refreshes)
        .with_refresh(true);
    let max_ticks = accesses.saturating_mul(ATTACK_TICKS_PER_ACCESS);
    let mitigated = run_adversary(attack, &defended, accesses, max_ticks, seed);
    // The attacker-throughput baseline: the same pattern against the same
    // device with mitigation disabled outright.
    let undefended = AttackSetup::new(nrh)
        .with_policy(MitigationPolicy::Disabled)
        .with_refresh(true);
    let baseline = run_adversary(attack, &undefended, accesses, max_ticks, seed);

    m.insert(
        "max_row_activations".into(),
        mitigated.max_row_activations.into(),
    );
    m.insert("nrh_breached".into(), mitigated.breached(nrh).into());
    m.insert("aggressor_rows".into(), mitigated.aggressor_rows.into());
    m.insert(
        "aggressor_coverage".into(),
        mitigated.aggressor_coverage.into(),
    );
    m.insert("rfms_triggered".into(), mitigated.rfms_triggered.into());
    m.insert("abo_events".into(), mitigated.abo_events.into());
    m.insert("activations".into(), mitigated.activations.into());
    m.insert("elapsed_ticks".into(), mitigated.elapsed_ticks.into());
    m.insert(
        "baseline_elapsed_ticks".into(),
        baseline.elapsed_ticks.into(),
    );
    m.insert(
        "baseline_max_row_activations".into(),
        baseline.max_row_activations.into(),
    );
    // How much the defense costs the *attacker*: mitigated runtime per
    // access over undefended runtime per access (>= 1 when RFMs stall the
    // hammering).
    let slowdown = if baseline.accesses_per_kilotick() > 0.0 {
        baseline.accesses_per_kilotick() / mitigated.accesses_per_kilotick().max(f64::MIN_POSITIVE)
    } else {
        0.0
    };
    m.insert("attacker_slowdown".into(), slowdown.into());
    // On-die ECC adjudication: a post-breach metric layer for ECC-equipped
    // profiles.  The overshoot beyond NRH on the hottest row is converted
    // into raw bit flips and adjudicated codeword by codeword — singleton
    // flips are silently corrected, colliding flips escape to the host.
    if let Some(ecc) = profile.on_die_ecc() {
        let overshoot = u64::from(mitigated.max_row_activations).saturating_sub(u64::from(nrh));
        let adjudication =
            ecc.adjudicate(overshoot, workloads::attack::row_bits(&organization), seed);
        m.insert("ecc_raw_flips".into(), adjudication.raw_flips.into());
        m.insert(
            "ecc_flips_corrected".into(),
            adjudication.flips_corrected.into(),
        );
        m.insert(
            "ecc_flips_escaped".into(),
            adjudication.flips_escaped.into(),
        );
    }
    m.insert(
        "completed".into(),
        (mitigated.completed && baseline.completed).into(),
    );
    m
}

fn execute_abo_latency(
    prac_level: Option<prac_core::config::PracLevel>,
    nbo: u32,
    window_ns: f64,
) -> Map {
    let panel = run_characterization(nbo, prac_level, window_ns);
    let mut m = Map::new();
    m.insert(
        "rfms_per_abo".into(),
        prac_level.map_or(Value::Null, |l| l.rfms_per_alert().into()),
    );
    m.insert("attacker_accesses".into(), panel.samples.len().into());
    m.insert("abo_events".into(), panel.abo_events.into());
    m.insert("abo_rfms".into(), panel.abo_rfms.into());
    m.insert("latency_spikes".into(), panel.spike_count().into());
    m.insert(
        "mean_baseline_latency_ns".into(),
        panel.mean_baseline_latency_ns.into(),
    );
    m.insert(
        "mean_spike_latency_ns".into(),
        panel.mean_spike_latency_ns.into(),
    );
    m
}

fn execute_side_channel(
    nbo: u32,
    encryptions: u32,
    k0: u8,
    p0: u8,
    defended: bool,
    seed: u64,
) -> Map {
    let policy = if defended {
        let timing = DramTimingSummary::ddr5_8000b();
        let tprac =
            TpracConfig::solve_for_threshold(nbo, &timing, CounterResetPolicy::ResetEveryTrefw)
                .expect("TB-Window solvable for the attack NBO");
        MitigationPolicy::Tprac(tprac)
    } else {
        MitigationPolicy::AboOnly
    };
    let experiment = SideChannelExperiment {
        nbo,
        encryptions,
        policy,
        seed,
    };
    let outcome = experiment.run_for_key_byte(k0, p0);
    let detector = SpikeDetector::default();

    let mut m = Map::new();
    m.insert("k0".into(), u64::from(k0).into());
    m.insert("defended".into(), defended.into());
    m.insert("true_nibble".into(), u64::from(outcome.true_nibble).into());
    m.insert(
        "leaked_row".into(),
        outcome.leaked_row.map_or(Value::Null, Value::from),
    );
    m.insert(
        "hottest_victim_row".into(),
        outcome
            .hottest_victim_row()
            .map_or(Value::Null, Value::from),
    );
    m.insert("nibble_recovered".into(), outcome.nibble_recovered().into());
    m.insert(
        "attacker_activations_to_leaked_row".into(),
        outcome.attacker_activations_to_leaked_row.into(),
    );
    m.insert("abo_rfms".into(), outcome.abo_rfms.into());
    m.insert("tb_rfms".into(), outcome.tb_rfms.into());
    m.insert("rfm_count".into(), outcome.rfm_times_ns.len().into());
    m.insert(
        "attacker_accesses".into(),
        outcome.attacker_latencies_ns.len().into(),
    );
    m.insert(
        "latency_spikes".into(),
        detector.count_spikes(&outcome.attacker_latencies_ns).into(),
    );
    m
}

fn execute_tmax_series(nbo: u32, counter_reset: bool) -> Map {
    let timing = DramTimingSummary::ddr5_8000b();
    let analysis = SecurityAnalysis::with_back_off_threshold(nbo, &timing, reset(counter_reset));
    let mut m = Map::new();
    m.insert("nbo".into(), nbo.into());
    m.insert("counter_reset".into(), counter_reset.into());
    for (window, tmax) in analysis.tmax_series(&figure7_windows()) {
        m.insert(format!("tmax_at_{window:.2}_trefi"), tmax.into());
    }
    m
}

fn execute_solve_window(nrh: u32, counter_reset: bool) -> Map {
    let timing = DramTimingSummary::ddr5_8000b();
    let analysis = SecurityAnalysis::with_back_off_threshold(nrh, &timing, reset(counter_reset));
    let mut m = Map::new();
    m.insert("nrh".into(), nrh.into());
    m.insert("counter_reset".into(), counter_reset.into());
    match analysis.solve_tb_window() {
        Ok(solution) => {
            m.insert("solvable".into(), true.into());
            m.insert("tb_window_trefi".into(), solution.tb_window_trefi.into());
            m.insert("tb_window_ns".into(), solution.tb_window_ns.into());
            m.insert("tmax".into(), solution.tmax.into());
            m.insert("bandwidth_loss".into(), solution.bandwidth_loss.into());
        }
        Err(_) => {
            m.insert("solvable".into(), false.into());
        }
    }
    m
}

fn execute_covert(
    kind: pracleak::covert::CovertChannelKind,
    nbo: u32,
    symbols: usize,
    seed: u64,
) -> Map {
    let result = run_covert_channel(kind, nbo, symbols, seed);
    let mut m = Map::new();
    m.insert("channel".into(), format!("{kind:?}").into());
    m.insert("nbo".into(), nbo.into());
    m.insert(
        "transmission_period_us".into(),
        result.transmission_period_us.into(),
    );
    m.insert("bitrate_kbps".into(), result.bitrate_kbps.into());
    m.insert("bits_transmitted".into(), result.bits_transmitted.into());
    m.insert("bit_errors".into(), result.bit_errors.into());
    m.insert("error_rate".into(), result.error_rate().into());
    m
}

fn execute_storage(queue: prac_core::queue::QueueKind, banks: u32) -> Map {
    let timing = DramTimingSummary::ddr5_8000b();
    let model = StorageModel::ddr5_32gb(&timing, banks);
    let overhead = model.tprac_overhead(&timing, queue);
    let mut m = Map::new();
    m.insert(
        "rfm_interval_register_bits".into(),
        rfm_interval_register_bits(timing.t_refw_ns / 2.0, timing.t_refi_ns / 1024.0).into(),
    );
    m.insert(
        "dram_bits_per_bank".into(),
        overhead.dram_bits_per_bank.into(),
    );
    m.insert("dram_bits_total".into(), overhead.dram_bits_total().into());
    m.insert("controller_bits".into(), overhead.controller_bits.into());
    m.insert("total_bytes".into(), overhead.total_bytes().into());
    m
}

fn reset(counter_reset: bool) -> CounterResetPolicy {
    if counter_reset {
        CounterResetPolicy::ResetEveryTrefw
    } else {
        CounterResetPolicy::NoReset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_scenarios_execute_instantly() {
        let metrics = execute(&ScenarioSpec::SolveWindow {
            nrh: 1024,
            counter_reset: true,
        });
        assert_eq!(metrics.get("solvable"), Some(&Value::Bool(true)));
        assert!(metrics.get("tmax").and_then(Value::as_u64).unwrap() < 1024);

        let metrics = execute(&ScenarioSpec::Storage {
            queue: prac_core::queue::QueueKind::SingleEntryFrequency,
            banks: 128,
        });
        assert!(metrics.get("total_bytes").and_then(Value::as_u64).unwrap() > 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = ScenarioSpec::Covert {
            kind: pracleak::covert::CovertChannelKind::ActivityBased,
            nbo: 256,
            symbols: 4,
            seed: 9,
        };
        assert_eq!(execute(&spec), execute(&spec));
    }

    #[test]
    fn unconfigurable_perf_cells_record_the_error() {
        // NRH = 1 has no safe TB-Window; the cell must record the failure
        // deterministically instead of running a fallback configuration.
        let spec = ScenarioSpec::Perf(Box::new(crate::scenario::PerfScenario {
            setup: system_sim::MitigationSetup::Tprac {
                tref_rate: prac_core::tprac::TrefRate::None,
                counter_reset: true,
            },
            rowhammer_threshold: 1,
            prac_level: prac_core::config::PracLevel::One,
            workload: workloads::quick_suite().remove(0),
            instructions_per_core: 1_000,
            cores: 2,
            channels: 1,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 1,
        }));
        let metrics = execute(&spec);
        assert_eq!(metrics.get("completed"), Some(&Value::Bool(false)));
        assert!(metrics
            .get("config_error")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("no safe TB-Window")));
        assert_eq!(execute(&spec), metrics, "error cells are deterministic");
    }

    #[test]
    fn multi_channel_perf_cells_report_per_channel_stats() {
        let spec = ScenarioSpec::Perf(Box::new(crate::scenario::PerfScenario {
            setup: system_sim::MitigationSetup::AboOnly,
            rowhammer_threshold: 1024,
            prac_level: prac_core::config::PracLevel::One,
            workload: workloads::quick_suite().remove(0),
            instructions_per_core: 3_000,
            cores: 2,
            channels: 4,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 77,
        }));
        let metrics = execute(&spec);
        assert_eq!(metrics.get("channels").and_then(Value::as_u64), Some(4));
        let mut reads_across_channels = 0u64;
        for channel in 0..4 {
            reads_across_channels += metrics
                .get(&format!("ch{channel}_reads"))
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("missing ch{channel}_reads"));
        }
        // The high-intensity quick workload reaches DRAM on several
        // channels; the per-channel reads must sum to something real.
        assert!(reads_across_channels > 0);
    }

    #[test]
    fn single_channel_perf_cells_keep_the_pre_channel_metric_schema() {
        // Cached single-channel results (written before the channel
        // dimension existed) and fresh ones must have identical metric
        // sets, because their cache keys are identical.
        let spec = ScenarioSpec::Perf(Box::new(crate::scenario::PerfScenario {
            setup: system_sim::MitigationSetup::AboOnly,
            rowhammer_threshold: 1024,
            prac_level: prac_core::config::PracLevel::One,
            workload: workloads::quick_suite().remove(0),
            instructions_per_core: 2_000,
            cores: 2,
            channels: 1,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 78,
        }));
        let metrics = execute(&spec);
        assert!(!metrics.contains_key("channels"));
        assert!(!metrics.contains_key("ch0_reads"));
    }

    #[test]
    fn attack_cells_report_security_metrics() {
        let spec = |setup: MitigationSetup| ScenarioSpec::Attack {
            attack: AttackKind::SingleSided,
            setup,
            nrh: 512,
            accesses: 700,
            profile: DeviceProfile::JedecBaseline,
            seed: 1,
        };
        // Undefended: the single-sided hammer must breach the threshold.
        let baseline = execute(&spec(MitigationSetup::BaselineNoAbo));
        assert_eq!(baseline.get("nrh_breached"), Some(&Value::Bool(true)));
        assert!(
            baseline
                .get("max_row_activations")
                .and_then(Value::as_u64)
                .unwrap()
                >= 512
        );
        // TPRAC: the peak stays below NRH and the attacker pays a slowdown.
        let defended = execute(&spec(MitigationSetup::Tprac {
            tref_rate: prac_core::tprac::TrefRate::None,
            counter_reset: true,
        }));
        assert_eq!(defended.get("nrh_breached"), Some(&Value::Bool(false)));
        assert!(
            defended
                .get("rfms_triggered")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            defended
                .get("attacker_slowdown")
                .and_then(Value::as_f64)
                .unwrap()
                > 1.0
        );
        assert_eq!(
            defended.get("aggressor_coverage").and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(defended.get("completed"), Some(&Value::Bool(true)));
        // Deterministic, like every other kind.
        assert_eq!(
            execute(&spec(MitigationSetup::AboOnly)),
            execute(&spec(MitigationSetup::AboOnly))
        );
    }

    #[test]
    fn ecc_profiles_adjudicate_breach_overshoot() {
        let spec = |profile| ScenarioSpec::Attack {
            attack: AttackKind::SingleSided,
            setup: MitigationSetup::BaselineNoAbo,
            nrh: 512,
            accesses: 700,
            profile,
            seed: 1,
        };
        // The baseline device has no on-die ECC, so the adjudication fields
        // must stay absent (metric schema is additive-only).
        let baseline = execute(&spec(DeviceProfile::JedecBaseline));
        assert!(!baseline.contains_key("ecc_raw_flips"));
        assert!(!baseline.contains_key("device_profile"));
        for profile in [DeviceProfile::VendorA, DeviceProfile::VendorB] {
            let metrics = execute(&spec(profile));
            assert_eq!(
                metrics.get("device_profile").and_then(Value::as_str),
                Some(profile.slug())
            );
            let raw = metrics
                .get("ecc_raw_flips")
                .and_then(Value::as_u64)
                .unwrap();
            let corrected = metrics
                .get("ecc_flips_corrected")
                .and_then(Value::as_u64)
                .unwrap();
            let escaped = metrics
                .get("ecc_flips_escaped")
                .and_then(Value::as_u64)
                .unwrap();
            // Every raw flip is adjudicated exactly once.
            assert_eq!(corrected + escaped, raw);
            // An undefended breach at this depth overshoots enough to flip bits.
            assert!(raw > 0, "{} produced no raw flips", profile.slug());
        }
    }

    #[test]
    fn unconfigurable_attack_cells_record_the_error() {
        let spec = ScenarioSpec::Attack {
            attack: AttackKind::DoubleSided,
            setup: MitigationSetup::Tprac {
                tref_rate: prac_core::tprac::TrefRate::None,
                counter_reset: true,
            },
            nrh: 1, // no safe TB-Window exists
            accesses: 100,
            profile: DeviceProfile::JedecBaseline,
            seed: 0,
        };
        let metrics = execute(&spec);
        assert_eq!(metrics.get("completed"), Some(&Value::Bool(false)));
        assert!(metrics.contains_key("config_error"));
    }

    #[test]
    fn attacked_perf_cells_add_the_security_headline() {
        let cell = |attack| {
            ScenarioSpec::Perf(Box::new(crate::scenario::PerfScenario {
                setup: system_sim::MitigationSetup::AboOnly,
                rowhammer_threshold: 1024,
                prac_level: prac_core::config::PracLevel::One,
                workload: workloads::quick_suite().remove(0),
                instructions_per_core: 2_000,
                cores: 1,
                channels: 1,
                ranks: 0,
                profile: dram_sim::DeviceProfile::JedecBaseline,
                attack,
                seed: 5,
            }))
        };
        let benign = execute(&cell(None));
        assert!(!benign.contains_key("attack"));
        assert!(!benign.contains_key("max_row_activations"));
        let attacked = execute(&cell(Some(AttackKind::ManySided { sides: 4 })));
        assert_eq!(
            attacked.get("attack").and_then(Value::as_str),
            Some("nsided4")
        );
        assert!(attacked.contains_key("max_row_activations"));
        assert!(attacked.contains_key("nrh_breached"));
    }

    #[test]
    fn grouped_execution_is_bit_identical_to_cold_cells() {
        // The fork/prefix group executor must reproduce the per-cell path
        // byte for byte for every kind of member: the shared baseline, an
        // ABO cell (forked), a PARA cell (zero horizon, runs cold inside
        // the group), and an unconfigurable TPRAC cell (config error).
        let cell = |setup: MitigationSetup, nrh: u32| crate::scenario::PerfScenario {
            setup,
            rowhammer_threshold: nrh,
            prac_level: prac_core::config::PracLevel::One,
            workload: workloads::quick_suite().remove(0),
            instructions_per_core: 4_000,
            cores: 2,
            channels: 1,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 21,
        };
        let cells = [
            cell(MitigationSetup::BaselineNoAbo, 1024),
            cell(MitigationSetup::AboOnly, 1024),
            cell(MitigationSetup::AboPlusAcbRfm, 1024),
            cell(
                MitigationSetup::Tprac {
                    tref_rate: prac_core::tprac::TrefRate::None,
                    counter_reset: true,
                },
                1024,
            ),
            cell(
                MitigationSetup::Para {
                    one_in: 64,
                    seed: system_sim::PARA_DEFAULT_SEED,
                },
                1024,
            ),
        ];
        for engine in [EngineKind::Tick, EngineKind::Event] {
            let refs: Vec<&crate::scenario::PerfScenario> = cells.iter().collect();
            let grouped = execute_perf_group(&refs, engine);
            for (perf, grouped_metrics) in cells.iter().zip(&grouped) {
                let cold = execute_perf(perf, engine, 1);
                assert_eq!(
                    grouped_metrics,
                    &cold,
                    "{engine:?}/{}: grouped result diverged from the cold run",
                    perf.setup.slug()
                );
            }
        }
    }

    #[test]
    fn grouped_execution_records_config_errors_per_cell() {
        let cell = |setup: MitigationSetup| crate::scenario::PerfScenario {
            setup,
            rowhammer_threshold: 1, // no safe TB-Window exists at NRH = 1
            prac_level: prac_core::config::PracLevel::One,
            workload: workloads::quick_suite().remove(0),
            instructions_per_core: 1_000,
            cores: 1,
            channels: 1,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 3,
        };
        let cells = [
            cell(MitigationSetup::Tprac {
                tref_rate: prac_core::tprac::TrefRate::None,
                counter_reset: true,
            }),
            cell(MitigationSetup::AboOnly),
        ];
        let refs: Vec<&crate::scenario::PerfScenario> = cells.iter().collect();
        let grouped = execute_perf_group(&refs, EngineKind::default());
        assert_eq!(grouped[0].get("completed"), Some(&Value::Bool(false)));
        assert!(grouped[0].contains_key("config_error"));
        assert_eq!(
            grouped[0],
            execute_perf(&cells[0], EngineKind::default(), 1)
        );
        assert_eq!(
            grouped[1],
            execute_perf(&cells[1], EngineKind::default(), 1)
        );
    }

    #[test]
    fn perf_metrics_are_engine_independent() {
        let spec = ScenarioSpec::Perf(Box::new(crate::scenario::PerfScenario {
            setup: system_sim::MitigationSetup::AboOnly,
            rowhammer_threshold: 1024,
            prac_level: prac_core::config::PracLevel::One,
            workload: workloads::quick_suite().remove(0),
            instructions_per_core: 5_000,
            cores: 2,
            channels: 1,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 41,
        }));
        assert_eq!(
            execute_with(&spec, EngineKind::Tick),
            execute_with(&spec, EngineKind::Event),
            "cached metrics must stay valid across engines"
        );
    }
}
