//! Incremental result cache.
//!
//! Each executed scenario is persisted as one JSON file named by its stable
//! [`Scenario::key`] hash.  A later run with the same configuration finds the
//! file, verifies the embedded spec matches (guarding against hash collisions
//! and stale formats), and skips the simulation.  Any change to the scenario
//! — threshold, seed, budget, workload — changes the key and misses.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{Map, Value};

use crate::scenario::Scenario;

/// A directory of per-scenario result files.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

/// A cached (or freshly executed) scenario result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// The scenario's metric map.
    pub metrics: Map,
    /// Wall-clock milliseconds the original execution took.
    pub wall_ms: f64,
}

impl ResultCache {
    /// Opens (and creates if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The default on-disk location, `target/campaigns/cache`.
    #[must_use]
    pub fn default_root() -> PathBuf {
        Path::new("target").join("campaigns").join("cache")
    }

    /// Path of the result file for `scenario`.
    #[must_use]
    pub fn entry_path(&self, scenario: &Scenario) -> PathBuf {
        self.root.join(format!("{:016x}.json", scenario.key()))
    }

    /// Looks the scenario up; `None` on miss, format mismatch, or a (wildly
    /// unlikely) hash collision.
    #[must_use]
    pub fn lookup(&self, scenario: &Scenario) -> Option<CachedResult> {
        let text = fs::read_to_string(self.entry_path(scenario)).ok()?;
        let value = serde_json::from_str(&text).ok()?;
        if value.get("spec") != Some(&scenario.spec.to_json()) {
            return None;
        }
        Some(CachedResult {
            metrics: value.get("metrics")?.as_object()?.clone(),
            wall_ms: value.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0),
        })
    }

    /// Persists a freshly executed result.
    ///
    /// # Errors
    ///
    /// Propagates the error if the file cannot be written.
    pub fn store(&self, scenario: &Scenario, result: &CachedResult) -> io::Result<()> {
        let mut entry = Map::new();
        entry.insert("spec".into(), scenario.spec.to_json());
        entry.insert("metrics".into(), Value::Object(result.metrics.clone()));
        entry.insert("wall_ms".into(), result.wall_ms.into());
        let text = serde_json::to_string_pretty(&Value::Object(entry))
            .expect("JSON serialisation is infallible");
        fs::write(self.entry_path(scenario), text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    fn temp_cache(tag: &str) -> ResultCache {
        let root =
            std::env::temp_dir().join(format!("prac-campaign-cache-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        ResultCache::open(root).unwrap()
    }

    fn scenario(nrh: u32) -> Scenario {
        Scenario::new(
            "s",
            ScenarioSpec::SolveWindow {
                nrh,
                counter_reset: true,
            },
        )
    }

    #[test]
    fn miss_then_hit_then_miss_on_change() {
        let cache = temp_cache("hit-miss");
        let s = scenario(1024);
        assert!(cache.lookup(&s).is_none(), "cold cache must miss");

        let mut metrics = Map::new();
        metrics.insert("tmax".into(), 572u64.into());
        let result = CachedResult {
            metrics,
            wall_ms: 1.5,
        };
        cache.store(&s, &result).unwrap();
        assert_eq!(cache.lookup(&s), Some(result), "same config must hit");

        assert!(
            cache.lookup(&scenario(2048)).is_none(),
            "changed threshold must miss"
        );
    }

    #[test]
    fn collision_guard_rejects_mismatched_spec() {
        let cache = temp_cache("collision");
        let s = scenario(512);
        cache
            .store(
                &s,
                &CachedResult {
                    metrics: Map::new(),
                    wall_ms: 0.0,
                },
            )
            .unwrap();
        // Corrupt the entry so the stored spec no longer matches.
        let path = cache.entry_path(&s);
        fs::write(&path, r#"{"spec":{"kind":"other"},"metrics":{}}"#).unwrap();
        assert!(cache.lookup(&s).is_none());
    }
}
