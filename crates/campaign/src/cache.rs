//! Incremental result cache — a thin adapter over the content-addressed
//! [`result_store::ResultStore`].
//!
//! Each executed scenario is persisted as one store record whose identity is
//! the scenario's cache-key preimage (`sim-r<REV>:{canonical spec JSON}`), so
//! the store key *is* the pre-existing [`Scenario::key`] hash: every cache
//! entry written before the store existed maps to the same key after it.  A
//! later run with the same configuration finds the record, verifies the
//! embedded spec matches (guarding against hash collisions and stale
//! formats), and skips the simulation.  Any change to the scenario —
//! threshold, seed, budget, workload — changes the key and misses.
//!
//! Opening a cache at a directory that still holds the legacy layout (one
//! `<16-hex-key>.json` file per cell) migrates those cells into the store:
//! parseable cells whose content re-hashes to their file name are imported
//! and the legacy file removed; unparseable files are quarantined into
//! `quarantine/` (never a crash); cells whose key no longer matches (stale
//! `SIM_REVISION`) are left alone — they were already unreachable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use result_store::{ResultStore, StoreRecord};
use serde_json::{Map, Value};

use crate::scenario::{key_preimage, Scenario};

/// The campaign-facing result cache, backed by a shared [`ResultStore`].
#[derive(Debug, Clone)]
pub struct ResultCache {
    store: Arc<ResultStore>,
}

/// A cached (or freshly executed) scenario result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// The scenario's metric map.
    pub metrics: Map,
    /// Wall-clock milliseconds the original execution took.
    pub wall_ms: f64,
}

impl ResultCache {
    /// Opens (and creates if needed) a cache rooted at `root`, migrating any
    /// legacy per-cell JSON files found there into the store.
    ///
    /// # Errors
    ///
    /// Propagates the error if the store cannot be opened.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        let store = ResultStore::open(&root)?;
        migrate_legacy_cells(&store, &root)?;
        Ok(Self {
            store: Arc::new(store),
        })
    }

    /// Wraps an already-open store (shared with e.g. the serve loop).
    #[must_use]
    pub fn from_store(store: Arc<ResultStore>) -> Self {
        Self { store }
    }

    /// The backing store.
    #[must_use]
    pub fn store_handle(&self) -> Arc<ResultStore> {
        Arc::clone(&self.store)
    }

    /// The default on-disk location, `target/campaigns/cache`.
    #[must_use]
    pub fn default_root() -> PathBuf {
        Path::new("target").join("campaigns").join("cache")
    }

    /// Looks the scenario up; `None` on miss, format mismatch, or a (wildly
    /// unlikely) hash collision.
    #[must_use]
    pub fn lookup(&self, scenario: &Scenario) -> Option<CachedResult> {
        let record = self.store.get(scenario.key())?;
        decode_payload(&record.payload, scenario)
    }

    /// Persists a freshly executed result.
    ///
    /// # Errors
    ///
    /// Propagates the error if the record cannot be appended.
    pub fn store(&self, scenario: &Scenario, result: &CachedResult) -> io::Result<()> {
        self.store
            .insert(&record_for(scenario, result))
            .map(|_key| ())
    }

    /// Durably flushes the backing store's index.
    ///
    /// # Errors
    ///
    /// Propagates the error from the store flush.
    pub fn flush(&self) -> io::Result<()> {
        self.store.flush()
    }
}

/// Builds the store record for a scenario result.  The payload keeps the
/// exact object shape of the legacy per-cell files (`spec` / `metrics` /
/// `wall_ms`), so migrated and freshly written records are indistinguishable.
fn record_for(scenario: &Scenario, result: &CachedResult) -> StoreRecord {
    let mut entry = Map::new();
    entry.insert("spec".into(), scenario.spec.to_json());
    entry.insert("metrics".into(), Value::Object(result.metrics.clone()));
    entry.insert("wall_ms".into(), result.wall_ms.into());
    StoreRecord::new(key_preimage(&scenario.spec), Value::Object(entry))
}

/// Decodes a store payload, applying the collision/staleness guard: the
/// embedded spec must match the scenario asking.
fn decode_payload(payload: &Value, scenario: &Scenario) -> Option<CachedResult> {
    if payload.get("spec") != Some(&scenario.spec.to_json()) {
        return None;
    }
    Some(CachedResult {
        metrics: payload.get("metrics")?.as_object()?.clone(),
        wall_ms: payload
            .get("wall_ms")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
    })
}

/// Migrates legacy `<16-hex-key>.json` cells sitting next to the store.
fn migrate_legacy_cells(store: &ResultStore, root: &Path) -> io::Result<()> {
    let mut migrated = false;
    for entry in fs::read_dir(root)?.filter_map(Result::ok) {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        if stem.len() != 16 || u64::from_str_radix(stem, 16).is_err() {
            continue; // index.json and anything else that is not a cell
        }
        let key = u64::from_str_radix(stem, 16).expect("checked above");
        match read_legacy_cell(&path, key) {
            Ok(Some(record)) => {
                if !store.contains(key) {
                    store.insert(&record)?;
                }
                migrated = true;
                fs::remove_file(&path)?;
            }
            Ok(None) => {
                // Parseable but its key no longer matches its content — a
                // stale SIM_REVISION cell.  It was already unreachable under
                // the old layout; leave it for the archaeologists.
            }
            Err(_) => {
                // Unparseable: quarantine instead of crashing the run.
                let quarantine = root.join("quarantine");
                fs::create_dir_all(&quarantine)?;
                let _ = fs::rename(&path, quarantine.join(name));
            }
        }
    }
    if migrated {
        store.flush()?;
    }
    Ok(())
}

/// Reads one legacy cell.  `Ok(Some)` when the embedded spec re-hashes to
/// the file's key (so the record is current), `Ok(None)` when it is
/// parseable but stale, `Err` when unreadable.
fn read_legacy_cell(path: &Path, key: u64) -> io::Result<Option<StoreRecord>> {
    let text = fs::read_to_string(path)?;
    let payload: Value = serde_json::from_str(&text)
        .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))?;
    let spec = payload
        .get("spec")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "cell missing `spec`"))?;
    let mut identity = format!("sim-r{}:", crate::scenario::SIM_REVISION);
    identity.push_str(&spec.to_string());
    let record = StoreRecord::new(identity, payload);
    Ok((record.key() == key).then_some(record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("prac-campaign-cache-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn scenario(nrh: u32) -> Scenario {
        Scenario::new(
            "s",
            ScenarioSpec::SolveWindow {
                nrh,
                counter_reset: true,
            },
        )
    }

    fn result(tmax: u64) -> CachedResult {
        let mut metrics = Map::new();
        metrics.insert("tmax".into(), tmax.into());
        CachedResult {
            metrics,
            wall_ms: 1.5,
        }
    }

    #[test]
    fn miss_then_hit_then_miss_on_change() {
        let cache = ResultCache::open(temp_root("hit-miss")).unwrap();
        let s = scenario(1024);
        assert!(cache.lookup(&s).is_none(), "cold cache must miss");

        cache.store(&s, &result(572)).unwrap();
        assert_eq!(cache.lookup(&s), Some(result(572)), "same config must hit");

        assert!(
            cache.lookup(&scenario(2048)).is_none(),
            "changed threshold must miss"
        );
    }

    #[test]
    fn collision_guard_rejects_mismatched_spec() {
        let cache = ResultCache::open(temp_root("collision")).unwrap();
        let s = scenario(512);
        // Insert a record under s's key whose embedded spec is different —
        // the store-level analogue of the old corrupted-file test.
        let mut payload = Map::new();
        payload.insert(
            "spec".into(),
            serde_json::from_str(r#"{"kind":"other"}"#).unwrap(),
        );
        payload.insert("metrics".into(), Value::Object(Map::new()));
        let record = StoreRecord::new(key_preimage(&s.spec), Value::Object(payload));
        cache.store_handle().insert(&record).unwrap();
        assert!(cache.lookup(&s).is_none());
    }

    #[test]
    fn legacy_cells_migrate_into_the_store() {
        let root = temp_root("migrate");
        // Write a legacy-format cell the way the pre-store cache did.
        {
            let cache = ResultCache::open(&root).unwrap();
            cache.store(&scenario(1024), &result(7)).unwrap();
        }
        let legacy_key = scenario(1024).key();
        let store = ResultStore::open(&root).unwrap();
        let record = store.get(legacy_key).unwrap();
        let legacy_path = root.join(format!("{legacy_key:016x}.json"));
        fs::write(&legacy_path, record.payload.to_string()).unwrap();
        fs::remove_dir_all(root.join("segments")).unwrap();
        fs::remove_file(root.join("index.json")).unwrap();
        drop(store);
        // Also drop an unparseable cell next to it.
        let junk_path = root.join("00000000deadbeef.json");
        fs::write(&junk_path, "not json {").unwrap();

        let cache = ResultCache::open(&root).unwrap();
        assert_eq!(
            cache.lookup(&scenario(1024)),
            Some(result(7)),
            "legacy cell must hit through the store"
        );
        assert!(!legacy_path.exists(), "migrated cell file is removed");
        assert!(!junk_path.exists(), "junk cell is moved out of the way");
        assert!(
            root.join("quarantine")
                .join("00000000deadbeef.json")
                .exists(),
            "junk cell is quarantined, not deleted"
        );
    }

    #[test]
    fn clones_share_one_store() {
        let cache = ResultCache::open(temp_root("clone")).unwrap();
        let other = cache.clone();
        cache.store(&scenario(64), &result(1)).unwrap();
        assert_eq!(other.lookup(&scenario(64)), Some(result(1)));
    }
}
