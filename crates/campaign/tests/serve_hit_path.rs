//! The tentpole acceptance test: a repeated scenario query against the
//! serve loop is answered from the store with *zero* simulation work — the
//! hit path never constructs a `SystemSimulation`.
//!
//! This file holds exactly one test because it asserts on the process-wide
//! simulation-construction counter: a sibling test running full-system
//! cells in parallel would make the exact-equality check racy.

use std::net::TcpListener;

use campaign::serve::client;
use campaign::{ResultCache, Scenario, ScenarioSpec, Server};
use serde_json::{Map, Value};
use system_sim::{simulations_built, EngineKind, MitigationSetup};

#[test]
fn serve_hit_path_never_constructs_a_simulation() {
    let root = std::env::temp_dir().join(format!("prac-serve-hit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = Server::new(ResultCache::open(&root).unwrap(), EngineKind::default());

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let serving = {
        let server = server.clone();
        std::thread::spawn(move || server.serve_tcp(&listener))
    };

    // A real full-system performance cell: the miss path must simulate,
    // which is what gives the counter its baseline movement.
    let spec = ScenarioSpec::Perf(Box::new(campaign::PerfScenario {
        setup: MitigationSetup::AboOnly,
        rowhammer_threshold: 1024,
        prac_level: prac_core::config::PracLevel::One,
        workload: workloads::quick_suite().remove(0),
        instructions_per_core: 2_000,
        cores: 1,
        channels: 1,
        ranks: 0,
        profile: dram_sim::DeviceProfile::JedecBaseline,
        attack: None,
        seed: 99,
    }));
    let expected_key = format!("{:016x}", Scenario::new("probe", spec.clone()).key());
    let mut request = Map::new();
    request.insert("op".into(), "query".into());
    request.insert("spec".into(), spec.to_json());
    let request = Value::Object(request);

    let before_miss = simulations_built();
    let miss = client::request_tcp(addr, &request).unwrap();
    assert_eq!(miss.get("ok"), Some(&Value::Bool(true)), "{miss}");
    assert_eq!(miss.get("hit"), Some(&Value::Bool(false)), "{miss}");
    assert_eq!(
        miss.get("key").and_then(Value::as_str),
        Some(expected_key.as_str())
    );
    let after_miss = simulations_built();
    assert!(
        after_miss > before_miss,
        "the miss path must run the simulation (built {before_miss} -> {after_miss})"
    );

    // The tentpole assertion: the repeated query hits the store and the
    // construction counter does not move at all.
    let hit = client::request_tcp(addr, &request).unwrap();
    assert_eq!(hit.get("hit"), Some(&Value::Bool(true)), "{hit}");
    assert_eq!(
        simulations_built(),
        after_miss,
        "the hit path constructed a SystemSimulation"
    );
    assert_eq!(
        hit.get("metrics"),
        miss.get("metrics"),
        "served metrics must be byte-identical to the executed ones"
    );

    // Clean shutdown, and the persisted record survives a fresh open.
    let mut shutdown = Map::new();
    shutdown.insert("op".into(), "shutdown".into());
    client::request_tcp(addr, &Value::Object(shutdown)).unwrap();
    serving.join().unwrap().unwrap();
    let reopened = ResultCache::open(&root).unwrap();
    assert!(reopened.lookup(&Scenario::new("probe", spec)).is_some());
    let _ = std::fs::remove_dir_all(&root);
}
