//! Fork-equivalence sweep for the checkpoint/fork execution subsystem.
//!
//! Pausing a run on an arbitrary tick boundary, forking the paused state
//! and resuming must be bit-identical to the uninterrupted run.  The sweep
//! here exercises the full snapshot/restore surface: every registered
//! mitigation engine (with its internal scheduler state), every registered
//! attack pattern (with its address-stream state), multiple channel
//! counts, and both execution engines.  A final runner-level test asserts
//! that prefix-grouped campaign execution produces records identical to
//! cell-by-cell execution.

use campaign::{Campaign, CampaignRunner, PerfScenario, Scenario, ScenarioSpec};
use prac_core::config::PracLevel;
use system_sim::{
    attack_registry, mitigation_registry, workload_traces, AttackKind, EngineKind,
    ExperimentConfig, MitigationSetup, PrefixOutcome, SystemSimulation,
};
use workloads::quick_suite;

/// A RowHammer threshold every registry entry is solvable at.
const NRH: u32 = 1024;

fn config_for(
    setup: MitigationSetup,
    attack: Option<AttackKind>,
    channels: u32,
    engine: EngineKind,
) -> ExperimentConfig {
    ExperimentConfig::new(setup, 1_500)
        .with_engine(engine)
        .with_rowhammer_threshold(NRH)
        .with_cores(1)
        .with_channels(channels)
        .with_attack(attack)
}

/// Runs `config` cold, then paused-and-forked, and asserts the three
/// results (cold, forked resume, original resume) are identical.
fn assert_fork_equivalent(config: &ExperimentConfig, context: &str) {
    let system = config
        .build_system_config()
        .unwrap_or_else(|error| panic!("{context}: unbuildable config: {error}"));
    let workload = quick_suite().remove(0).workload;
    let traces = workload_traces(config, &system, &workload, 42);
    let cold = SystemSimulation::new(system.clone(), traces.clone()).run();
    // Late enough that mitigation engines have internal state to capture,
    // early enough that the run is guaranteed to still be in flight.
    let pause = (3 * cold.elapsed_ticks / 4).max(1);
    match SystemSimulation::new(system, traces).run_until(pause) {
        PrefixOutcome::Paused(prefix) => {
            assert_eq!(prefix.now(), pause, "{context}: paused at the wrong tick");
            let fork = prefix.fork();
            assert_eq!(fork.resume(), cold, "{context}: forked resume diverged");
            assert_eq!(prefix.resume(), cold, "{context}: original resume diverged");
        }
        PrefixOutcome::Finished(result) => {
            // Only reachable when the run is so short the pause point lands
            // past the end; the completed result must still be the cold one.
            assert_eq!(result, cold, "{context}: early finish diverged");
        }
    }
}

/// Every registered mitigation × every registered attack (plus no attack)
/// × both engines, single channel: the acceptance sweep.
#[test]
fn fork_equivalence_across_mitigation_and_attack_registries() {
    let attacks: Vec<Option<AttackKind>> = std::iter::once(None)
        .chain(attack_registry().into_iter().map(|a| Some(a.kind)))
        .collect();
    for engine in [EngineKind::Tick, EngineKind::Event] {
        for mitigation in mitigation_registry() {
            for attack in &attacks {
                let context = format!("{engine:?} / {} / {attack:?}", mitigation.slug);
                let config = config_for(mitigation.setup.clone(), *attack, 1, engine);
                assert_fork_equivalent(&config, &context);
            }
        }
    }
}

/// Channel counts 2 and 4 (1 is covered by the registry sweep above):
/// every mitigation, one representative attack, both engines.  The paused
/// state must carry every per-channel controller and device.
#[test]
fn fork_equivalence_across_channel_counts() {
    for engine in [EngineKind::Tick, EngineKind::Event] {
        for mitigation in mitigation_registry() {
            for channels in [2, 4] {
                let context = format!("{engine:?} / {} / {channels}ch", mitigation.slug);
                let config = config_for(
                    mitigation.setup.clone(),
                    Some(AttackKind::DoubleSided),
                    channels,
                    engine,
                );
                assert_fork_equivalent(&config, &context);
            }
        }
    }
}

/// Pause/fork/resume with channel sharding on: a sequential cold run, a
/// sharded cold run, and a sharded fork resume must all be bit-identical.
/// This pins the derived-state contract of the paused snapshot — the
/// per-channel wheel slots and due mask are rebuilt on resume, so a fork
/// resumed under `--sim-threads 4` replays the sequential cold run exactly.
#[test]
fn fork_equivalence_with_channel_sharding() {
    for mitigation in mitigation_registry() {
        for channels in [2, 4] {
            let context = format!("sharded / {} / {channels}ch", mitigation.slug);
            let sequential = config_for(
                mitigation.setup.clone(),
                Some(AttackKind::DoubleSided),
                channels,
                EngineKind::Event,
            );
            let sharded = sequential.clone().with_sim_threads(4);
            let system = sharded
                .build_system_config()
                .unwrap_or_else(|error| panic!("{context}: unbuildable config: {error}"));
            let workload = quick_suite().remove(0).workload;
            let traces = workload_traces(&sharded, &system, &workload, 42);
            let cold = {
                let system = sequential
                    .build_system_config()
                    .expect("sequential twin builds");
                SystemSimulation::new(system, traces.clone()).run()
            };
            let sharded_cold = SystemSimulation::new(system.clone(), traces.clone()).run();
            assert_eq!(
                sharded_cold, cold,
                "{context}: sharded cold run diverged from sequential"
            );
            let pause = (3 * cold.elapsed_ticks / 4).max(1);
            match SystemSimulation::new(system, traces).run_until(pause) {
                PrefixOutcome::Paused(prefix) => {
                    let fork = prefix.fork();
                    assert_eq!(fork.resume(), cold, "{context}: forked resume diverged");
                    assert_eq!(prefix.resume(), cold, "{context}: original resume diverged");
                }
                PrefixOutcome::Finished(result) => {
                    assert_eq!(result, cold, "{context}: early finish diverged");
                }
            }
        }
    }
}

/// Pause/fork/resume on a 2-rank device: the paused snapshot must carry
/// the per-rank tFAW activation rings and the staggered refresh windows,
/// so a fork taken mid-run replays the cold run exactly.  Every mitigation
/// under one representative attack, both engines.
#[test]
fn fork_equivalence_on_a_two_rank_device() {
    for engine in [EngineKind::Tick, EngineKind::Event] {
        for mitigation in mitigation_registry() {
            let context = format!("{engine:?} / {} / 2 ranks", mitigation.slug);
            let config = config_for(
                mitigation.setup.clone(),
                Some(AttackKind::DoubleSided),
                1,
                engine,
            )
            .with_ranks(2);
            assert_fork_equivalent(&config, &context);
        }
    }
}

/// A perf campaign whose cells share a workload prefix must produce
/// byte-identical records whether the runner forks the shared prefix or
/// executes every cell cold.
#[test]
fn prefix_grouped_campaign_matches_cell_by_cell_execution() {
    let cell = |name: &str, setup: MitigationSetup, seed: u64| {
        Scenario::new(
            name,
            ScenarioSpec::Perf(Box::new(PerfScenario {
                setup,
                rowhammer_threshold: NRH,
                prac_level: PracLevel::One,
                workload: quick_suite().remove(0),
                instructions_per_core: 2_000,
                cores: 2,
                channels: 1,
                ranks: 0,
                profile: dram_sim::DeviceProfile::JedecBaseline,
                attack: Some(AttackKind::SingleSided),
                seed,
            })),
        )
    };
    let mut campaign = Campaign::new("fork-eq", "Fork equivalence", "test");
    // Four cells sharing one prefix group (same everything but the setup) …
    campaign.push(cell("baseline", MitigationSetup::BaselineNoAbo, 9));
    campaign.push(cell("abo", MitigationSetup::AboOnly, 9));
    campaign.push(cell("acb", MitigationSetup::AboPlusAcbRfm, 9));
    campaign.push(cell(
        "para",
        MitigationSetup::Para {
            one_in: 128,
            seed: system_sim::PARA_DEFAULT_SEED,
        },
        9,
    ));
    // … plus a cell in its own group (different seed → different traces).
    campaign.push(cell("abo-lone", MitigationSetup::AboOnly, 10));

    let run = |fork_prefix: bool| {
        CampaignRunner::new()
            .with_workers(2)
            .with_fork_prefix(fork_prefix)
            .run(&campaign)
            .expect("campaign runs")
    };
    let forked = run(true);
    let cold = run(false);
    assert_eq!(forked.records.len(), cold.records.len());
    for (forked, cold) in forked.records.iter().zip(&cold.records) {
        assert_eq!(forked.scenario.name, cold.scenario.name);
        assert_eq!(
            forked.metrics, cold.metrics,
            "metrics diverged for {}",
            cold.scenario.name
        );
        assert_eq!(forked.cached, cold.cached);
    }
}
