//! Golden snapshot of every registry scenario's cache key.
//!
//! The incremental result cache under `target/campaigns/cache/` is addressed
//! by the stable FNV-1a hash of each scenario's canonical JSON spec.  An
//! *accidental* change to that serialisation (a renamed field, a reordered
//! map, a tweaked default) would silently invalidate the whole cache — or,
//! worse, silently reuse stale results for a scenario whose meaning changed.
//! This test pins the key of every scenario in the registry, for both the
//! quick and the full profile, against a committed golden file.
//!
//! When keys change **intentionally** (new scenarios, deliberately changed
//! sweeps), regenerate the snapshot and review the diff:
//!
//! ```text
//! UPDATE_CACHE_KEY_GOLDEN=1 cargo test -p campaign --test cache_key_snapshot
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use campaign::registry::{all_campaigns, Profile};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("cache_keys.txt")
}

fn render_snapshot() -> String {
    let mut out = String::new();
    out.push_str(
        "# Golden cache keys: <profile>/<campaign>/<scenario> = <fnv1a64 of the canonical spec>\n\
         # Regenerate with UPDATE_CACHE_KEY_GOLDEN=1 cargo test -p campaign --test cache_key_snapshot\n",
    );
    for (label, profile) in [("quick", Profile::quick()), ("full", Profile::full())] {
        for campaign in all_campaigns(&profile) {
            for scenario in &campaign.scenarios {
                writeln!(
                    out,
                    "{label}/{}/{} = {:016x}",
                    campaign.name,
                    scenario.name,
                    scenario.key()
                )
                .expect("writing to a String is infallible");
            }
        }
    }
    out
}

#[test]
fn registry_cache_keys_match_the_golden_snapshot() {
    let rendered = render_snapshot();
    let path = golden_path();
    if std::env::var_os("UPDATE_CACHE_KEY_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden file has a parent"))
            .expect("create golden directory");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden file {} ({error}); regenerate with \
             UPDATE_CACHE_KEY_GOLDEN=1 cargo test -p campaign --test cache_key_snapshot",
            path.display()
        )
    });
    if golden != rendered {
        let mut diff = String::new();
        let mut differing = 0usize;
        for (g, r) in golden.lines().zip(rendered.lines()) {
            if g != r && differing < 10 {
                let _ = writeln!(diff, "  golden:  {g}\n  current: {r}");
                differing += 1;
            } else if g != r {
                differing += 1;
            }
        }
        let (g_n, r_n) = (golden.lines().count(), rendered.lines().count());
        panic!(
            "cache keys drifted from the golden snapshot \
             ({differing} differing lines, {g_n} golden vs {r_n} current):\n{diff}\n\
             If this change is intentional, regenerate with \
             UPDATE_CACHE_KEY_GOLDEN=1 and review the diff — every changed key \
             invalidates (or re-homes) a cache entry under target/campaigns/cache/."
        );
    }
}

#[test]
fn cache_keys_are_unique_across_the_whole_registry_per_profile() {
    for profile in [Profile::quick(), Profile::full()] {
        let mut seen = std::collections::HashMap::new();
        for campaign in all_campaigns(&profile) {
            for scenario in &campaign.scenarios {
                if let Some(previous) = seen.insert(
                    scenario.key(),
                    (campaign.name.clone(), scenario.name.clone()),
                ) {
                    // Identical specs in different campaigns legitimately
                    // share a key (that is what cache reuse is for), but the
                    // spec JSON must then be identical too.
                    let (prev_campaign, prev_name) = previous;
                    let current = scenario.spec.to_json().to_string();
                    let other = all_campaigns(&profile)
                        .into_iter()
                        .find(|c| c.name == prev_campaign)
                        .and_then(|c| {
                            c.scenarios
                                .iter()
                                .find(|s| s.name == prev_name)
                                .map(|s| s.spec.to_json().to_string())
                        })
                        .expect("previous scenario exists");
                    assert_eq!(
                        current, other,
                        "key collision between different specs: \
                         {}/{} vs {prev_campaign}/{prev_name}",
                        campaign.name, scenario.name
                    );
                }
            }
        }
    }
}
