//! The pluggable attack-pattern API: the adversary-side mirror of
//! `prac_core::mitigation`.
//!
//! A RowHammer access pattern is no longer a closed enum: the
//! [`AttackPattern`] trait describes an adversary as a deterministic stream
//! of DRAM-coordinate accesses, so arbitrary attacks — in-tree or injected
//! by downstream code — run through one contract that every consumer (the
//! `pracleak` agents, the full-system attacker core, the `attacks`
//! campaign) understands:
//!
//! * **Access stream** — [`AttackPattern::next_access`] returns the next
//!   [`AttackAccess`]: the [`DramAddress`] to touch, the earliest tick it
//!   should issue (bursting adversaries schedule here), and whether the
//!   access targets an aggressor row or is decoy/filler traffic.
//! * **Hot-row disclosure** — [`AttackPattern::hot_rows`] enumerates the
//!   aggressor rows the pattern pressures, so harnesses can measure
//!   aggressor coverage and check per-row activation counts against `NRH`.
//!
//! # Determinism contract
//!
//! Mirroring the [`MitigationEngine`](../../prac_core/mitigation/index.html)
//! rules:
//!
//! 1. **The stream is a pure function of the configuration.** Calling
//!    `next_access` repeatedly must replay the same addresses for the same
//!    built pattern, regardless of wall-clock or ambient entropy.
//! 2. **Randomness is seeded.** Probabilistic patterns (e.g.
//!    [`DecoyBlastPattern`]) derive every draw from an explicit seed carried
//!    in their [`AttackKind`] configuration, so a scenario re-runs
//!    bit-for-bit and its campaign cache key captures the whole behaviour.
//! 3. **`now` only gates, never generates.** The `now` argument may delay an
//!    access (via [`AttackAccess::not_before`]) but must not change *which*
//!    addresses the stream visits, so trace-mode consumers (which flatten
//!    timing) and agent-mode consumers (which honour it) hammer the same
//!    rows.
//!
//! The module also owns the low-level slot-cycling arithmetic
//! ([`cycle_slot`], [`strided_slots`], [`line_slots`]) that the benign
//! [`crate::patterns`] iterators previously duplicated.

use dram_sim::org::{DramAddress, DramOrganization};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Round-robin slot selection: the `position`-th access over `slots`
/// equivalent targets.  `slots` is clamped to at least 1.  This is the one
/// cycling primitive shared by every attack engine and by the benign
/// [`crate::patterns::AddressStream`].
#[must_use]
pub fn cycle_slot(position: u64, slots: u64) -> u64 {
    position % slots.max(1)
}

/// Number of distinct stride-aligned slots inside a `footprint` of bytes
/// (at least 1, so degenerate footprints still produce a stream).
#[must_use]
pub fn strided_slots(footprint: u64, stride: u64) -> u64 {
    (footprint / stride.max(1)).max(1)
}

/// Number of distinct cache-line slots inside a `footprint` of bytes.
#[must_use]
pub fn line_slots(footprint: u64, line_bytes: u64) -> u64 {
    strided_slots(footprint, line_bytes)
}

/// Number of data bits in one DRAM row of `org` — the field the on-die ECC
/// adjudication distributes post-breach bit flips over.
#[must_use]
pub fn row_bits(org: &DramOrganization) -> u64 {
    u64::from(org.columns_per_row) * u64::from(org.column_bytes) * 8
}

/// Number of distinct ranks an attack's hot rows pressure.  The built-in
/// placements concentrate on rank 0, so this is 1 today, but rank-aware
/// harness metrics (ECC adjudication per rank, coverage under consolidated
/// rank interleaving) must not bake that assumption in.
#[must_use]
pub fn hot_rank_span(hot_rows: &[DramAddress]) -> u32 {
    let mut ranks: Vec<u32> = hot_rows.iter().map(|address| address.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    u32::try_from(ranks.len()).expect("rank count fits in u32")
}

/// One access an attack pattern wants to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackAccess {
    /// The DRAM coordinate to touch (consumers encode it to a physical
    /// address through their address mapping).
    pub address: DramAddress,
    /// Earliest tick at which the access should issue.  `0` means
    /// "immediately"; bursting patterns (e.g. [`RfmPressurePattern`]) point
    /// this at the next burst window.  Consumers without a timing notion
    /// (trace generation) may ignore it — see the module determinism
    /// contract.
    pub not_before: u64,
    /// `true` when the access targets an aggressor row from
    /// [`AttackPattern::hot_rows`]; `false` for decoy / filler traffic.
    pub aggressor: bool,
}

impl AttackAccess {
    /// An immediate aggressor access.
    #[must_use]
    pub fn aggressor(address: DramAddress) -> Self {
        Self {
            address,
            not_before: 0,
            aggressor: true,
        }
    }

    /// An immediate decoy / filler access.
    #[must_use]
    pub fn filler(address: DramAddress) -> Self {
        Self {
            address,
            not_before: 0,
            aggressor: false,
        }
    }
}

/// A deterministic adversarial access stream.
///
/// See the [module documentation](self) for the determinism contract.
/// Implementations must be `Send` so attack cells can run on the campaign
/// runner's worker threads.
pub trait AttackPattern: std::fmt::Debug + Send {
    /// Deep-copies the pattern behind its trait object (checkpoint/fork).
    fn clone_box(&self) -> Box<dyn AttackPattern>;

    /// Captures the pattern's complete state — see [`prac_core::snapshot`].
    fn snapshot(&self) -> prac_core::StateSnapshot;

    /// Restores state previously captured from the same pattern type.
    fn restore(&mut self, snapshot: &prac_core::StateSnapshot);

    /// Short human-readable label (reports, logs).
    fn label(&self) -> &'static str;

    /// The next access of the infinite stream.  `now` is the consumer's
    /// current tick; it may gate the access via
    /// [`AttackAccess::not_before`] but must not change the address
    /// sequence.
    fn next_access(&mut self, now: u64) -> AttackAccess;

    /// The aggressor rows this pattern pressures (column 0 coordinates).
    /// Used by harnesses to compute aggressor coverage and compare per-row
    /// activation counts against the RowHammer threshold.
    fn hot_rows(&self) -> Vec<DramAddress>;
}

/// Shared placement for the built-in patterns: everything hammers rank 0 /
/// bank-group 0 / bank 0 of channel 0 (valid in every organisation), with
/// the victim row in the middle of the bank so neighbours exist on both
/// sides.
#[derive(Debug, Clone, Copy)]
struct Placement {
    org: DramOrganization,
    victim_row: u32,
}

impl Placement {
    fn new(org: &DramOrganization) -> Self {
        Self {
            org: *org,
            victim_row: (org.rows_per_bank / 2).max(1),
        }
    }

    /// The coordinate of `row` at the cycling `column` slot.
    fn at(&self, row: u32, position: u64) -> DramAddress {
        let row = row % self.org.rows_per_bank.max(1);
        let column = u32::try_from(cycle_slot(position, u64::from(self.org.columns_per_row)))
            .expect("column slot fits in u32");
        DramAddress::new(&self.org, 0, 0, 0, row, column)
    }

    fn hot(&self, rows: &[u32]) -> Vec<DramAddress> {
        rows.iter().map(|&row| self.at(row, 0)).collect()
    }
}

/// Classic single-sided RowHammer: one aggressor row hammered continuously
/// (columns cycle so consecutive accesses are distinct cache lines).
#[derive(Debug, Clone)]
pub struct SingleSidedPattern {
    placement: Placement,
    position: u64,
}

impl SingleSidedPattern {
    /// Creates the pattern against the placement's default aggressor row.
    #[must_use]
    pub fn new(org: &DramOrganization) -> Self {
        Self {
            placement: Placement::new(org),
            position: 0,
        }
    }

    fn aggressor_row(&self) -> u32 {
        self.placement.victim_row + 1
    }
}

impl Clone for Box<dyn AttackPattern> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl AttackPattern for SingleSidedPattern {
    prac_core::snapshot_methods!(dyn AttackPattern);

    fn label(&self) -> &'static str {
        "single-sided"
    }

    fn next_access(&mut self, _now: u64) -> AttackAccess {
        let access = self.placement.at(self.aggressor_row(), self.position);
        self.position += 1;
        AttackAccess::aggressor(access)
    }

    fn hot_rows(&self) -> Vec<DramAddress> {
        self.placement.hot(&[self.aggressor_row()])
    }
}

/// Double-sided RowHammer: the two rows sandwiching the victim are hammered
/// alternately, doubling the disturbance per victim activation pair.
#[derive(Debug, Clone)]
pub struct DoubleSidedPattern {
    placement: Placement,
    position: u64,
}

impl DoubleSidedPattern {
    /// Creates the pattern around the placement's victim row.
    #[must_use]
    pub fn new(org: &DramOrganization) -> Self {
        Self {
            placement: Placement::new(org),
            position: 0,
        }
    }

    fn rows(&self) -> [u32; 2] {
        [
            self.placement.victim_row.saturating_sub(1),
            self.placement.victim_row + 1,
        ]
    }
}

impl AttackPattern for DoubleSidedPattern {
    prac_core::snapshot_methods!(dyn AttackPattern);

    fn label(&self) -> &'static str {
        "double-sided"
    }

    fn next_access(&mut self, _now: u64) -> AttackAccess {
        let rows = self.rows();
        let row = rows[usize::try_from(cycle_slot(self.position, 2)).expect("slot < 2")];
        // Advance the column once per full pass over the aggressor set so
        // the two rows see the same line sequence.
        let access = self.placement.at(row, self.position / 2);
        self.position += 1;
        AttackAccess::aggressor(access)
    }

    fn hot_rows(&self) -> Vec<DramAddress> {
        self.placement.hot(&self.rows())
    }
}

/// N-sided ("many-sided") RowHammer: `sides` aggressor rows spaced two rows
/// apart (every gap row is a victim), hammered round-robin — the TRRespass /
/// Blacksmith-style generalisation that defeats deterministic
/// neighbour-tracking mitigations.
#[derive(Debug, Clone)]
pub struct ManySidedPattern {
    placement: Placement,
    sides: u32,
    position: u64,
}

impl ManySidedPattern {
    /// Creates the pattern with `sides` aggressors (clamped to at least 2).
    #[must_use]
    pub fn new(org: &DramOrganization, sides: u32) -> Self {
        Self {
            placement: Placement::new(org),
            sides: sides.max(2),
            position: 0,
        }
    }

    fn rows(&self) -> Vec<u32> {
        (0..self.sides)
            .map(|i| self.placement.victim_row + 2 * i)
            .collect()
    }
}

impl AttackPattern for ManySidedPattern {
    prac_core::snapshot_methods!(dyn AttackPattern);

    fn label(&self) -> &'static str {
        "many-sided"
    }

    fn next_access(&mut self, _now: u64) -> AttackAccess {
        // Hot path: the row is computed directly instead of indexing the
        // `rows()` Vec, which would heap-allocate per access.
        let index = u32::try_from(cycle_slot(self.position, u64::from(self.sides)))
            .expect("slot fits in u32");
        let row = self.placement.victim_row + 2 * index;
        let access = self
            .placement
            .at(row, self.position / u64::from(self.sides));
        self.position += 1;
        AttackAccess::aggressor(access)
    }

    fn hot_rows(&self) -> Vec<DramAddress> {
        self.placement.hot(&self.rows())
    }
}

/// Half-Double-style neighbour pressure: a far aggressor two rows from the
/// victim carries the bulk of the hammering, and the near neighbour (distance
/// one) receives a low-rate assist — the access ratio that flips bits through
/// the combined near+far disturbance on sub-20nm parts.
#[derive(Debug, Clone)]
pub struct HalfDoublePattern {
    placement: Placement,
    /// Far-aggressor accesses per near-aggressor access.
    far_per_near: u64,
    position: u64,
}

impl HalfDoublePattern {
    /// Creates the pattern with the classic 8:1 far:near access ratio.
    #[must_use]
    pub fn new(org: &DramOrganization) -> Self {
        Self {
            placement: Placement::new(org),
            far_per_near: 8,
            position: 0,
        }
    }

    fn far_row(&self) -> u32 {
        self.placement.victim_row + 2
    }

    fn near_row(&self) -> u32 {
        self.placement.victim_row + 1
    }
}

impl AttackPattern for HalfDoublePattern {
    prac_core::snapshot_methods!(dyn AttackPattern);

    fn label(&self) -> &'static str {
        "half-double"
    }

    fn next_access(&mut self, _now: u64) -> AttackAccess {
        let period = self.far_per_near + 1;
        let slot = cycle_slot(self.position, period);
        let row = if slot < self.far_per_near {
            self.far_row()
        } else {
            self.near_row()
        };
        let access = self.placement.at(row, self.position / period);
        self.position += 1;
        AttackAccess::aggressor(access)
    }

    fn hot_rows(&self) -> Vec<DramAddress> {
        self.placement.hot(&[self.far_row(), self.near_row()])
    }
}

/// Decoy / blast pattern: every aggressor activation is padded with
/// `decoys` filler activations to rows drawn from a seeded stream across the
/// other bank groups.  Against sampling defenses (PARA-style) the fillers
/// soak up the per-activation mitigation probability; against
/// activation-budget defenses (ACB-RFM) they burn the bank-activation
/// budget of *other* banks without touching the aggressor's.
#[derive(Debug, Clone)]
pub struct DecoyBlastPattern {
    placement: Placement,
    decoys: u64,
    rng: StdRng,
    position: u64,
}

impl DecoyBlastPattern {
    /// Creates the pattern with `decoys` filler activations per aggressor
    /// activation, drawing filler rows from a stream seeded with `seed` —
    /// the same seeded [`StdRng`] the benign random pattern uses, so every
    /// distinct seed draws a distinct filler stream.
    #[must_use]
    pub fn new(org: &DramOrganization, decoys: u32, seed: u64) -> Self {
        Self {
            placement: Placement::new(org),
            decoys: u64::from(decoys),
            rng: StdRng::seed_from_u64(seed),
            position: 0,
        }
    }

    fn aggressor_row(&self) -> u32 {
        self.placement.victim_row + 1
    }

    fn filler(&mut self) -> DramAddress {
        let org = self.placement.org;
        // Fillers land in any bank group other than the aggressor's (bank
        // group 0) when more than one exists, so the aggressor bank's ACB
        // budget is untouched while the channel-wide sampler sees noise.
        let groups = u64::from(org.bank_groups.max(1));
        let bank_group = if groups > 1 {
            1 + u32::try_from(self.rng.gen_range(0..groups - 1)).expect("bank group fits")
        } else {
            0
        };
        let row = u32::try_from(self.rng.gen_range(0..u64::from(org.rows_per_bank.max(1))))
            .expect("row fits in u32");
        let column = u32::try_from(self.rng.gen_range(0..u64::from(org.columns_per_row.max(1))))
            .expect("column fits in u32");
        DramAddress::new(&org, 0, bank_group, 0, row, column)
    }
}

impl AttackPattern for DecoyBlastPattern {
    prac_core::snapshot_methods!(dyn AttackPattern);

    fn label(&self) -> &'static str {
        "decoy-blast"
    }

    fn next_access(&mut self, _now: u64) -> AttackAccess {
        let period = self.decoys + 1;
        let slot = cycle_slot(self.position, period);
        let access = if slot == 0 {
            AttackAccess::aggressor(
                self.placement
                    .at(self.aggressor_row(), self.position / period),
            )
        } else {
            AttackAccess::filler(self.filler())
        };
        self.position += 1;
        access
    }

    fn hot_rows(&self) -> Vec<DramAddress> {
        self.placement.hot(&[self.aggressor_row()])
    }
}

/// RFM-pressure pattern: hammers in bursts phase-locked to the tREFI
/// cadence.  For `duty_percent` of every tREFI the aggressor is hammered
/// flat out; the rest of the interval the attacker idles, so
/// activation-triggered mitigations (ACB, PARA) fire while the attacker is
/// *not* accumulating — and timing-based defenses reveal whether their RFM
/// schedule is truly independent of this adversarial phase alignment.
#[derive(Debug, Clone)]
pub struct RfmPressurePattern {
    placement: Placement,
    t_refi_ticks: u64,
    /// Hammering portion of each tREFI, in percent (1–100).
    duty_percent: u64,
    position: u64,
}

impl RfmPressurePattern {
    /// Creates the pattern bursting for `duty_percent` of every
    /// `t_refi_ticks`-long interval (duty clamped to 1–100).
    #[must_use]
    pub fn new(org: &DramOrganization, t_refi_ticks: u64, duty_percent: u32) -> Self {
        Self {
            placement: Placement::new(org),
            t_refi_ticks: t_refi_ticks.max(1),
            duty_percent: u64::from(duty_percent.clamp(1, 100)),
            position: 0,
        }
    }

    fn aggressor_row(&self) -> u32 {
        self.placement.victim_row + 1
    }

    /// The start of the next burst window at or after `now` (`now` itself
    /// when it already lies inside a burst).
    fn burst_gate(&self, now: u64) -> u64 {
        let phase = now % self.t_refi_ticks;
        let burst_end = self.t_refi_ticks * self.duty_percent / 100;
        if phase < burst_end.max(1) {
            now
        } else {
            now - phase + self.t_refi_ticks
        }
    }
}

impl AttackPattern for RfmPressurePattern {
    prac_core::snapshot_methods!(dyn AttackPattern);

    fn label(&self) -> &'static str {
        "rfm-pressure"
    }

    fn next_access(&mut self, now: u64) -> AttackAccess {
        let address = self.placement.at(self.aggressor_row(), self.position);
        self.position += 1;
        AttackAccess {
            address,
            not_before: self.burst_gate(now),
            aggressor: true,
        }
    }

    fn hot_rows(&self) -> Vec<DramAddress> {
        self.placement.hot(&[self.aggressor_row()])
    }
}

/// Which attack pattern a run uses.
///
/// This is declarative *data* (serialisable, hashable into campaign cache
/// keys); the runtime behaviour lives in the [`AttackPattern`] that
/// [`AttackKind::build`] constructs — the attacker-side mirror of
/// `system_sim::MitigationSetup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// One aggressor row hammered continuously.
    SingleSided,
    /// The two rows sandwiching a victim, hammered alternately.
    DoubleSided,
    /// `sides` aggressors spaced two rows apart, hammered round-robin.
    ManySided {
        /// Number of aggressor rows (clamped to at least 2).
        sides: u32,
    },
    /// Far-aggressor bulk hammering with low-rate near-neighbour assists.
    HalfDouble,
    /// Aggressor activations padded with seeded filler activations to evade
    /// sampling / budget defenses.
    DecoyBlast {
        /// Filler activations per aggressor activation.
        decoys: u32,
        /// Seed of the filler-row stream (part of the scenario's identity).
        seed: u64,
    },
    /// Bursts phase-locked against the tREFI / RFM cadence.
    RfmPressure {
        /// Hammering portion of every tREFI, in percent (1–100).
        duty_percent: u32,
    },
}

impl AttackKind {
    /// Label used in reports and plots.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AttackKind::SingleSided => "Single-Sided".into(),
            AttackKind::DoubleSided => "Double-Sided".into(),
            AttackKind::ManySided { sides } => format!("{sides}-Sided"),
            AttackKind::HalfDouble => "Half-Double".into(),
            AttackKind::DecoyBlast { decoys, .. } => format!("Decoy-Blast (x{decoys})"),
            AttackKind::RfmPressure { duty_percent } => {
                format!("RFM-Pressure ({duty_percent}% duty)")
            }
        }
    }

    /// Stable kebab-case slug used in scenario names and the CLI.  Must stay
    /// byte-identical for existing kinds: the campaign golden snapshot pins
    /// scenario names built from it.
    #[must_use]
    pub fn slug(&self) -> String {
        match self {
            AttackKind::SingleSided => "single-sided".into(),
            AttackKind::DoubleSided => "double-sided".into(),
            AttackKind::ManySided { sides } => format!("nsided{sides}"),
            AttackKind::HalfDouble => "half-double".into(),
            AttackKind::DecoyBlast { decoys, .. } => format!("decoy{decoys}"),
            AttackKind::RfmPressure { duty_percent } => format!("rfm-pressure{duty_percent}"),
        }
    }

    /// Builds the runtime pattern for an organisation.  `t_refi_ticks` is
    /// the refresh-interval length used by cadence-aware patterns, and
    /// `seed` is mixed into the pattern's own seed (if any) so sweeps can
    /// draw independent filler streams without changing the attack's
    /// identity.
    #[must_use]
    pub fn build(
        &self,
        org: &DramOrganization,
        t_refi_ticks: u64,
        seed: u64,
    ) -> Box<dyn AttackPattern> {
        match self {
            AttackKind::SingleSided => Box::new(SingleSidedPattern::new(org)),
            AttackKind::DoubleSided => Box::new(DoubleSidedPattern::new(org)),
            AttackKind::ManySided { sides } => Box::new(ManySidedPattern::new(org, *sides)),
            AttackKind::HalfDouble => Box::new(HalfDoublePattern::new(org)),
            AttackKind::DecoyBlast {
                decoys,
                seed: own_seed,
            } => Box::new(DecoyBlastPattern::new(org, *decoys, own_seed ^ seed)),
            AttackKind::RfmPressure { duty_percent } => {
                Box::new(RfmPressurePattern::new(org, t_refi_ticks, *duty_percent))
            }
        }
    }

    /// Serialized accesses the attacker needs before its hottest row
    /// reaches `nrh` activations on an *undefended* closed-page device
    /// (where every access is an activation): multi-row fan-out and filler
    /// padding dilute the per-row rate, so the budget scales with the
    /// pattern's shape.  Harnesses that want a meaningful
    /// breached-or-defended verdict must grant at least this many accesses
    /// — a smaller budget starves the attacker and reports "defended"
    /// vacuously.
    #[must_use]
    pub fn accesses_to_breach(&self, nrh: u32) -> u64 {
        let nrh = u64::from(nrh);
        match self {
            // All accesses land on one row.
            AttackKind::SingleSided | AttackKind::RfmPressure { .. } => nrh,
            // Accesses split evenly across the aggressor set.
            AttackKind::DoubleSided => nrh * 2,
            AttackKind::ManySided { sides } => nrh * u64::from((*sides).max(2)),
            // The far aggressor receives 8 of every 9 accesses.
            AttackKind::HalfDouble => nrh.div_ceil(8) * 9,
            // One aggressor access per `decoys` fillers.
            AttackKind::DecoyBlast { decoys, .. } => nrh * (u64::from(*decoys) + 1),
        }
    }

    /// The descriptor for this kind.
    #[must_use]
    pub fn descriptor(&self) -> AttackDescriptor {
        AttackDescriptor::of(*self)
    }

    /// Parses a registry slug (`prac-bench --attack <slug>`).  Only the
    /// registered spellings are accepted.
    #[must_use]
    pub fn parse_slug(slug: &str) -> Option<AttackKind> {
        attack_registry()
            .into_iter()
            .map(|descriptor| descriptor.kind)
            .find(|kind| kind.slug() == slug)
    }
}

/// A registered attack pattern: the declarative [`AttackKind`] plus its
/// stable identifiers and a one-line summary — the attacker-side mirror of
/// `system_sim::MitigationDescriptor`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackDescriptor {
    /// The declarative kind this descriptor describes.
    pub kind: AttackKind,
    /// Stable kebab-case slug (scenario names, CLI).
    pub slug: String,
    /// Human-readable label (reports, plots).
    pub label: String,
    /// One-line description for listings.
    pub summary: &'static str,
}

impl AttackDescriptor {
    /// Builds the descriptor of a kind.
    #[must_use]
    pub fn of(kind: AttackKind) -> Self {
        let summary = match &kind {
            AttackKind::SingleSided => "one aggressor row hammered flat out; the classic baseline",
            AttackKind::DoubleSided => {
                "both neighbours of one victim row, alternating; double pressure"
            }
            AttackKind::ManySided { .. } => {
                "N spaced aggressors round-robin; defeats neighbour tracking"
            }
            AttackKind::DecoyBlast { .. } => {
                "seeded filler ACTs pad each aggressor ACT; evades sampling"
            }
            AttackKind::HalfDouble => "far-aggressor bulk + near-neighbour assist at distance two",
            AttackKind::RfmPressure { .. } => {
                "bursts phase-locked to tREFI; probes RFM cadence alignment"
            }
        };
        Self {
            slug: kind.slug(),
            label: kind.label(),
            summary,
            kind,
        }
    }

    /// Whether the pattern pads its aggressor accesses with non-aggressor
    /// traffic (and therefore stresses sampling defenses specifically).
    #[must_use]
    pub fn uses_fillers(&self) -> bool {
        matches!(self.kind, AttackKind::DecoyBlast { .. })
    }
}

/// Seed of the registry's default decoy filler stream.  Fixed so the
/// registered scenario is deterministic; sweeps that want other streams set
/// the `seed` field of [`AttackKind::DecoyBlast`] explicitly.
pub const DECOY_DEFAULT_SEED: u64 = 0xDEC0_15EED;

/// Every built-in attack pattern, in escalation order: the classic
/// single-row baseline through the mitigation-aware adversaries.  The
/// `attacks` campaign and the pattern-validity property suite iterate this
/// registry, so a pattern added here is automatically swept against every
/// registered mitigation and checked against every address mapping.
#[must_use]
pub fn attack_registry() -> Vec<AttackDescriptor> {
    [
        AttackKind::SingleSided,
        AttackKind::DoubleSided,
        AttackKind::ManySided { sides: 8 },
        AttackKind::HalfDouble,
        AttackKind::DecoyBlast {
            decoys: 4,
            seed: DECOY_DEFAULT_SEED,
        },
        AttackKind::RfmPressure { duty_percent: 50 },
    ]
    .into_iter()
    .map(AttackDescriptor::of)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> DramOrganization {
        DramOrganization::ddr5_32gb_quad_rank()
    }

    const T_REFI: u64 = 15_600;

    #[test]
    fn row_bits_and_rank_span_describe_the_hot_row_field() {
        // The paper organisation: 128 columns × 64 B = 8 KiB rows.
        assert_eq!(row_bits(&org()), 128 * 64 * 8);
        // Every built-in placement concentrates on rank 0 regardless of the
        // organisation's rank count.
        for descriptor in attack_registry() {
            let pattern = descriptor.kind.build(&org(), T_REFI, 1);
            let hot = pattern.hot_rows();
            assert_eq!(hot_rank_span(&hot), 1, "{}", descriptor.slug);
        }
        // A synthetic multi-rank spread is counted without double-counting.
        let o = org();
        let spread = [
            DramAddress::new(&o, 0, 0, 0, 1, 0),
            DramAddress::new(&o, 1, 0, 0, 1, 0),
            DramAddress::new(&o, 1, 1, 0, 2, 0),
            DramAddress::new(&o, 3, 0, 1, 3, 0),
        ];
        assert_eq!(hot_rank_span(&spread), 3);
        assert_eq!(hot_rank_span(&[]), 0);
    }

    #[test]
    fn registry_slugs_and_labels_are_unique_and_described() {
        let registry = attack_registry();
        assert!(registry.len() >= 6, "{} registered attacks", registry.len());
        let mut slugs = std::collections::HashSet::new();
        for descriptor in &registry {
            assert!(
                slugs.insert(descriptor.slug.clone()),
                "duplicate slug {}",
                descriptor.slug
            );
            assert!(!descriptor.summary.is_empty());
            assert!(!descriptor.label.is_empty());
        }
    }

    #[test]
    fn slugs_parse_back_to_their_kind() {
        for descriptor in attack_registry() {
            assert_eq!(
                AttackKind::parse_slug(&descriptor.slug),
                Some(descriptor.kind),
                "slug {} must round-trip",
                descriptor.slug
            );
        }
        assert_eq!(AttackKind::parse_slug("no-such-attack"), None);
    }

    #[test]
    fn every_registered_pattern_reports_hot_rows_and_streams() {
        for descriptor in attack_registry() {
            let mut pattern = descriptor.kind.build(&org(), T_REFI, 0);
            let hot = pattern.hot_rows();
            assert!(!hot.is_empty(), "{}: no hot rows", descriptor.slug);
            for _ in 0..256 {
                let access = pattern.next_access(0);
                let a = access.address;
                let o = org();
                assert!(a.channel < o.channels);
                assert!(a.rank < o.ranks);
                assert!(a.bank_group < o.bank_groups);
                assert!(a.bank < o.banks_per_group);
                assert!(a.row < o.rows_per_bank);
                assert!(a.column < o.columns_per_row);
            }
        }
    }

    #[test]
    fn aggressor_accesses_target_hot_rows() {
        for descriptor in attack_registry() {
            let mut pattern = descriptor.kind.build(&org(), T_REFI, 0);
            let hot: std::collections::HashSet<(u32, u32, u32, u32)> = pattern
                .hot_rows()
                .into_iter()
                .map(|a| (a.rank, a.bank_group, a.bank, a.row))
                .collect();
            for _ in 0..512 {
                let access = pattern.next_access(0);
                let key = (
                    access.address.rank,
                    access.address.bank_group,
                    access.address.bank,
                    access.address.row,
                );
                if access.aggressor {
                    assert!(
                        hot.contains(&key),
                        "{}: aggressor access to a row outside hot_rows",
                        descriptor.slug
                    );
                } else {
                    assert!(
                        !hot.contains(&key),
                        "{}: filler access hit an aggressor row",
                        descriptor.slug
                    );
                }
            }
        }
    }

    #[test]
    fn double_sided_alternates_around_the_victim() {
        let mut pattern = DoubleSidedPattern::new(&org());
        let victim = Placement::new(&org()).victim_row;
        let rows: Vec<u32> = (0..4).map(|_| pattern.next_access(0).address.row).collect();
        assert_eq!(rows, vec![victim - 1, victim + 1, victim - 1, victim + 1]);
    }

    #[test]
    fn many_sided_covers_all_aggressors_per_round() {
        let mut pattern = ManySidedPattern::new(&org(), 8);
        let mut rows = std::collections::HashSet::new();
        for _ in 0..8 {
            rows.insert(pattern.next_access(0).address.row);
        }
        assert_eq!(rows.len(), 8, "one round must visit all 8 aggressors");
        assert_eq!(pattern.hot_rows().len(), 8);
    }

    #[test]
    fn half_double_keeps_the_far_to_near_ratio() {
        let mut pattern = HalfDoublePattern::new(&org());
        let far = pattern.far_row();
        let near = pattern.near_row();
        let mut far_count = 0u32;
        let mut near_count = 0u32;
        for _ in 0..90 {
            match pattern.next_access(0).address.row {
                r if r == far => far_count += 1,
                r if r == near => near_count += 1,
                other => panic!("unexpected row {other}"),
            }
        }
        assert_eq!(far_count, 80);
        assert_eq!(near_count, 10);
    }

    #[test]
    fn decoy_blast_is_seed_deterministic_and_mostly_filler() {
        let stream = |seed: u64| {
            let mut pattern = DecoyBlastPattern::new(&org(), 4, seed);
            (0..200).map(|_| pattern.next_access(0)).collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7), "same seed must replay bit-for-bit");
        assert_ne!(stream(7), stream(8), "different seeds must differ");
        // Adjacent even/odd seeds draw distinct streams too (a naive
        // `seed | 1` non-zero guard would alias them).
        assert_ne!(stream(6), stream(7), "even/odd seed pairs must differ");
        let accesses = stream(7);
        let aggressors = accesses.iter().filter(|a| a.aggressor).count();
        assert_eq!(aggressors, 40, "1 aggressor per 4 decoys over 200 accesses");
        // Fillers avoid the aggressor's bank group entirely.
        assert!(accesses
            .iter()
            .filter(|a| !a.aggressor)
            .all(|a| a.address.bank_group != 0));
    }

    #[test]
    fn rfm_pressure_gates_accesses_outside_the_burst_window() {
        let mut pattern = RfmPressurePattern::new(&org(), 1_000, 50);
        // Inside the burst: immediate.
        assert_eq!(pattern.next_access(10).not_before, 10);
        assert_eq!(pattern.next_access(499).not_before, 499);
        // Outside the burst: deferred to the next tREFI boundary.
        assert_eq!(pattern.next_access(500).not_before, 1_000);
        assert_eq!(pattern.next_access(1_999).not_before, 2_000);
        // The address sequence itself is unaffected by `now` (contract
        // rule 3): two patterns polled at different times agree on rows.
        let mut a = RfmPressurePattern::new(&org(), 1_000, 50);
        let mut b = RfmPressurePattern::new(&org(), 1_000, 50);
        for i in 0..64u64 {
            assert_eq!(
                a.next_access(i).address,
                b.next_access(i * 777).address,
                "now must not change the address stream"
            );
        }
    }

    #[test]
    fn breach_budgets_scale_with_pattern_fanout() {
        assert_eq!(AttackKind::SingleSided.accesses_to_breach(1024), 1024);
        assert_eq!(AttackKind::DoubleSided.accesses_to_breach(1024), 2048);
        assert_eq!(
            AttackKind::ManySided { sides: 8 }.accesses_to_breach(1024),
            8192
        );
        assert_eq!(
            AttackKind::DecoyBlast { decoys: 4, seed: 0 }.accesses_to_breach(1024),
            5120
        );
        assert_eq!(
            AttackKind::RfmPressure { duty_percent: 50 }.accesses_to_breach(1024),
            1024
        );
        // Half-double: 8 of 9 accesses hit the far row; the budget must
        // still deliver >= nrh far-row accesses.
        let budget = AttackKind::HalfDouble.accesses_to_breach(1024);
        assert!(budget * 8 / 9 >= 1024, "{budget}");
        // The budget is sufficient in simulation terms: an undefended
        // closed-page device sees exactly one ACT per access, so driving
        // each registered pattern for its own budget reaches NRH on some
        // row.  (The adversary integration suite in `pracleak` asserts the
        // end-to-end version of this.)
        for descriptor in attack_registry() {
            assert!(
                descriptor.kind.accesses_to_breach(256) >= 256,
                "{}: budget below NRH",
                descriptor.slug
            );
        }
    }

    #[test]
    fn slot_helpers_wrap_and_clamp() {
        assert_eq!(cycle_slot(0, 4), 0);
        assert_eq!(cycle_slot(5, 4), 1);
        assert_eq!(cycle_slot(9, 0), 0, "zero slots clamps to one");
        assert_eq!(strided_slots(4096, 1024), 4);
        assert_eq!(strided_slots(100, 0), 100, "zero stride clamps to one byte");
        assert_eq!(
            strided_slots(10, 64),
            1,
            "sub-stride footprints keep one slot"
        );
        assert_eq!(line_slots(256, 64), 4);
    }

    #[test]
    fn patterns_work_on_tiny_and_multi_channel_organisations() {
        for org in [
            DramOrganization::tiny_for_tests(),
            DramOrganization::ddr5_32gb_quad_rank().with_channels(4),
        ] {
            for descriptor in attack_registry() {
                let mut pattern = descriptor.kind.build(&org, T_REFI, 3);
                for _ in 0..64 {
                    let a = pattern.next_access(0).address;
                    assert!(a.row < org.rows_per_bank, "{}: row", descriptor.slug);
                    assert!(a.column < org.columns_per_row, "{}: col", descriptor.slug);
                    assert!(a.bank_group < org.bank_groups, "{}: bg", descriptor.slug);
                }
            }
        }
    }
}
