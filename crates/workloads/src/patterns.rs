//! Low-level address-pattern iterators used by the workload generators.
//!
//! All patterns produce cache-line-aligned physical addresses inside a
//! contiguous region `[base, base + footprint)`.  The slot-cycling
//! arithmetic is shared with the adversarial patterns and owned by
//! [`crate::attack`] ([`attack::cycle_slot`] / [`attack::strided_slots`]);
//! this module only maps slots to physical byte addresses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::attack;

/// Cache-line size assumed by all patterns.
pub const LINE_BYTES: u64 = 64;

/// A deterministic stream of cache-line addresses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Sequential lines, wrapping at the end of the footprint.
    Streaming {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
    },
    /// Fixed-stride lines (stride expressed in bytes), wrapping at the end.
    Strided {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Uniformly random lines over the footprint.
    Random {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// A small hot set of lines accessed round-robin (high cache locality).
    HotSet {
        /// First byte of the region.
        base: u64,
        /// Number of distinct hot lines.
        lines: u64,
    },
}

impl AddressPattern {
    /// Creates the stream of the pattern's addresses.
    #[must_use]
    pub fn stream(&self) -> AddressStream {
        let rng = match self {
            AddressPattern::Random { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        AddressStream {
            pattern: self.clone(),
            position: 0,
            rng,
        }
    }

    /// The number of distinct address slots the pattern cycles over (the
    /// stride between slots is [`LINE_BYTES`] except for `Strided`, where it
    /// is the configured stride).
    #[must_use]
    pub fn distinct_slots(&self) -> u64 {
        match self {
            AddressPattern::Streaming { footprint, .. }
            | AddressPattern::Random { footprint, .. } => {
                attack::line_slots(*footprint, LINE_BYTES)
            }
            AddressPattern::Strided {
                footprint, stride, ..
            } => attack::strided_slots(*footprint, (*stride).max(LINE_BYTES)),
            AddressPattern::HotSet { lines, .. } => (*lines).max(1),
        }
    }
}

/// Infinite stream over an [`AddressPattern`]'s cache-line addresses.
#[derive(Debug, Clone)]
pub struct AddressStream {
    pattern: AddressPattern,
    position: u64,
    rng: Option<StdRng>,
}

impl AddressStream {
    /// Next cache-line-aligned address (infinite stream).
    pub fn next_address(&mut self) -> u64 {
        let addr = match &self.pattern {
            AddressPattern::Streaming { base, .. } | AddressPattern::HotSet { base, .. } => {
                base + attack::cycle_slot(self.position, self.pattern.distinct_slots()) * LINE_BYTES
            }
            AddressPattern::Strided { base, stride, .. } => {
                base + attack::cycle_slot(self.position, self.pattern.distinct_slots())
                    * (*stride).max(LINE_BYTES)
            }
            AddressPattern::Random { base, .. } => {
                let slots = self.pattern.distinct_slots();
                let rng = self.rng.as_mut().expect("random pattern carries an RNG");
                base + rng.gen_range(0..slots) * LINE_BYTES
            }
        };
        self.position += 1;
        addr & !(LINE_BYTES - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_wraps_at_footprint() {
        let p = AddressPattern::Streaming {
            base: 0x1000,
            footprint: 256,
        };
        let mut it = p.stream();
        let addrs: Vec<u64> = (0..6).map(|_| it.next_address()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000, 0x1040]);
        assert_eq!(p.distinct_slots(), 4);
    }

    #[test]
    fn strided_respects_stride() {
        let p = AddressPattern::Strided {
            base: 0,
            footprint: 4096,
            stride: 1024,
        };
        let mut it = p.stream();
        assert_eq!(it.next_address(), 0);
        assert_eq!(it.next_address(), 1024);
        assert_eq!(it.next_address(), 2048);
        assert_eq!(p.distinct_slots(), 4);
    }

    #[test]
    fn random_is_reproducible_and_in_bounds() {
        let p = AddressPattern::Random {
            base: 0x8000,
            footprint: 1 << 20,
            seed: 7,
        };
        let a: Vec<u64> = {
            let mut it = p.stream();
            (0..100).map(|_| it.next_address()).collect()
        };
        let b: Vec<u64> = {
            let mut it = p.stream();
            (0..100).map(|_| it.next_address()).collect()
        };
        assert_eq!(a, b, "same seed must reproduce the same stream");
        for addr in a {
            assert!((0x8000..0x8000 + (1 << 20)).contains(&addr));
            assert_eq!(addr % LINE_BYTES, 0);
        }
    }

    #[test]
    fn hot_set_cycles_over_small_working_set() {
        let p = AddressPattern::HotSet { base: 0, lines: 3 };
        let mut it = p.stream();
        let addrs: Vec<u64> = (0..6).map(|_| it.next_address()).collect();
        assert_eq!(addrs, vec![0, 64, 128, 0, 64, 128]);
    }

    #[test]
    fn addresses_are_always_line_aligned() {
        let p = AddressPattern::Streaming {
            base: 0x1001, // deliberately misaligned base
            footprint: 4096,
        };
        let mut it = p.stream();
        for _ in 0..50 {
            assert_eq!(it.next_address() % LINE_BYTES, 0);
        }
    }

    #[test]
    fn stream_state_snapshot_roundtrips() {
        // The random stream carries an RNG; a snapshot must capture it so a
        // restored stream replays the exact same tail (checkpoint/fork).
        use prac_core::Restorable;
        let p = AddressPattern::Random {
            base: 0x8000,
            footprint: 1 << 20,
            seed: 7,
        };
        let mut stream = p.stream();
        for _ in 0..37 {
            stream.next_address();
        }
        let snap = stream.snapshot();
        let tail: Vec<u64> = (0..50).map(|_| stream.next_address()).collect();
        stream.restore(&snap);
        let replay: Vec<u64> = (0..50).map(|_| stream.next_address()).collect();
        assert_eq!(tail, replay);
    }
}
