//! Low-level address-pattern iterators used by the workload generators.
//!
//! All patterns produce cache-line-aligned physical addresses inside a
//! contiguous region `[base, base + footprint)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cache-line size assumed by all patterns.
pub const LINE_BYTES: u64 = 64;

/// A deterministic stream of cache-line addresses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Sequential lines, wrapping at the end of the footprint.
    Streaming {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
    },
    /// Fixed-stride lines (stride expressed in bytes), wrapping at the end.
    Strided {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Uniformly random lines over the footprint.
    Random {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        footprint: u64,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// A small hot set of lines accessed round-robin (high cache locality).
    HotSet {
        /// First byte of the region.
        base: u64,
        /// Number of distinct hot lines.
        lines: u64,
    },
}

impl AddressPattern {
    /// Creates an iterator over the pattern's addresses.
    #[must_use]
    pub fn iter(&self) -> PatternIter {
        let rng = match self {
            AddressPattern::Random { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
            _ => None,
        };
        PatternIter {
            pattern: self.clone(),
            position: 0,
            rng,
        }
    }

    /// The number of distinct cache lines the pattern can touch.
    #[must_use]
    pub fn distinct_lines(&self) -> u64 {
        match self {
            AddressPattern::Streaming { footprint, .. }
            | AddressPattern::Random { footprint, .. } => (footprint / LINE_BYTES).max(1),
            AddressPattern::Strided {
                footprint, stride, ..
            } => (footprint / stride.max(&LINE_BYTES)).max(1),
            AddressPattern::HotSet { lines, .. } => (*lines).max(1),
        }
    }
}

/// Iterator over an [`AddressPattern`].
#[derive(Debug, Clone)]
pub struct PatternIter {
    pattern: AddressPattern,
    position: u64,
    rng: Option<StdRng>,
}

impl PatternIter {
    /// Next cache-line-aligned address (infinite stream).
    pub fn next_address(&mut self) -> u64 {
        let addr = match &self.pattern {
            AddressPattern::Streaming { base, footprint } => {
                let lines = (footprint / LINE_BYTES).max(1);
                base + (self.position % lines) * LINE_BYTES
            }
            AddressPattern::Strided {
                base,
                footprint,
                stride,
            } => {
                let stride = (*stride).max(LINE_BYTES);
                let slots = (footprint / stride).max(1);
                base + (self.position % slots) * stride
            }
            AddressPattern::Random {
                base, footprint, ..
            } => {
                let lines = (footprint / LINE_BYTES).max(1);
                let rng = self.rng.as_mut().expect("random pattern carries an RNG");
                base + rng.gen_range(0..lines) * LINE_BYTES
            }
            AddressPattern::HotSet { base, lines } => {
                base + (self.position % (*lines).max(1)) * LINE_BYTES
            }
        };
        self.position += 1;
        addr & !(LINE_BYTES - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_wraps_at_footprint() {
        let p = AddressPattern::Streaming {
            base: 0x1000,
            footprint: 256,
        };
        let mut it = p.iter();
        let addrs: Vec<u64> = (0..6).map(|_| it.next_address()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000, 0x1040]);
        assert_eq!(p.distinct_lines(), 4);
    }

    #[test]
    fn strided_respects_stride() {
        let p = AddressPattern::Strided {
            base: 0,
            footprint: 4096,
            stride: 1024,
        };
        let mut it = p.iter();
        assert_eq!(it.next_address(), 0);
        assert_eq!(it.next_address(), 1024);
        assert_eq!(it.next_address(), 2048);
        assert_eq!(p.distinct_lines(), 4);
    }

    #[test]
    fn random_is_reproducible_and_in_bounds() {
        let p = AddressPattern::Random {
            base: 0x8000,
            footprint: 1 << 20,
            seed: 7,
        };
        let a: Vec<u64> = {
            let mut it = p.iter();
            (0..100).map(|_| it.next_address()).collect()
        };
        let b: Vec<u64> = {
            let mut it = p.iter();
            (0..100).map(|_| it.next_address()).collect()
        };
        assert_eq!(a, b, "same seed must reproduce the same stream");
        for addr in a {
            assert!((0x8000..0x8000 + (1 << 20)).contains(&addr));
            assert_eq!(addr % LINE_BYTES, 0);
        }
    }

    #[test]
    fn hot_set_cycles_over_small_working_set() {
        let p = AddressPattern::HotSet { base: 0, lines: 3 };
        let mut it = p.iter();
        let addrs: Vec<u64> = (0..6).map(|_| it.next_address()).collect();
        assert_eq!(addrs, vec![0, 64, 128, 0, 64, 128]);
    }

    #[test]
    fn addresses_are_always_line_aligned() {
        let p = AddressPattern::Streaming {
            base: 0x1001, // deliberately misaligned base
            footprint: 4096,
        };
        let mut it = p.iter();
        for _ in 0..50 {
            assert_eq!(it.next_address() % LINE_BYTES, 0);
        }
    }
}
