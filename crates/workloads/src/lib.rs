//! # workloads
//!
//! Synthetic workload generators standing in for the SPEC2006 / SPEC2017 /
//! CloudSuite traces used by the paper's performance study.
//!
//! The paper buckets its 50 workloads purely by memory intensity —
//! row-buffer misses per kilo-instruction (RBMPKI): High (≥ 10),
//! Medium (1–10) and Low (< 1) — and reports slowdowns per bucket.  The
//! generators here produce traces that land in the same buckets by
//! construction, so the *relative* performance results (who is hurt by
//! TB-RFMs, by roughly how much) are preserved even though the absolute
//! instruction streams differ from the proprietary traces.
//!
//! Four building blocks are provided:
//!
//! * [`generator::SyntheticWorkload`] — a parameterised generator
//!   (memory operations per kilo-instruction, footprint, access pattern,
//!   write fraction),
//! * [`suite`] — the named 50-workload suite mirroring Table 4's grouping
//!   into SPEC2K6-like, SPEC2K17-like and CloudSuite-like entries, plus a
//!   reduced "quick" suite for fast runs,
//! * [`patterns`] — low-level address-pattern iterators (streaming,
//!   strided, random-over-footprint, hot-set),
//! * [`attack`] — the pluggable adversary API: the [`attack::AttackPattern`]
//!   trait, the built-in RowHammer access patterns (single-sided through
//!   decoy-blast and RFM-pressure), and the [`attack::attack_registry`] the
//!   campaigns and the CLI enumerate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
pub mod generator;
pub mod patterns;
pub mod suite;

pub use attack::{attack_registry, AttackAccess, AttackDescriptor, AttackKind, AttackPattern};
pub use generator::{AccessPattern, SyntheticWorkload};
pub use suite::{full_suite, quick_suite, MemoryIntensity, WorkloadGroup, WorkloadSpec};
