//! The named workload suite used by the performance experiments.
//!
//! The paper evaluates 50 workloads from SPEC2006, SPEC2017 and CloudSuite,
//! grouped by memory intensity (Table 4).  Those traces are proprietary, so
//! this suite substitutes synthetic workloads that land in the same
//! row-buffer-miss-per-kilo-instruction (RBMPKI) bands and the same
//! benchmark-suite grouping.  Workload names make the substitution explicit
//! (`h-stream-01` rather than a SPEC benchmark name).

use serde::{Deserialize, Serialize};

use crate::generator::{AccessPattern, SyntheticWorkload};

/// Memory-intensity bucket from Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryIntensity {
    /// RBMPKI ≥ 10.
    High,
    /// 1 ≤ RBMPKI < 10.
    Medium,
    /// RBMPKI < 1.
    Low,
}

impl MemoryIntensity {
    /// Classifies a measured misses-per-kilo-instruction value.
    #[must_use]
    pub fn classify(mpki: f64) -> Self {
        if mpki >= 10.0 {
            MemoryIntensity::High
        } else if mpki >= 1.0 {
            MemoryIntensity::Medium
        } else {
            MemoryIntensity::Low
        }
    }
}

/// Benchmark-suite grouping used by Figures 10 and 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadGroup {
    /// Stand-ins for the SPEC2006 workloads.
    Spec2006Like,
    /// Stand-ins for the SPEC2017 workloads.
    Spec2017Like,
    /// Stand-ins for the CloudSuite workloads.
    CloudSuiteLike,
}

impl std::fmt::Display for WorkloadGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadGroup::Spec2006Like => write!(f, "SPEC2K6-like"),
            WorkloadGroup::Spec2017Like => write!(f, "SPEC2K17-like"),
            WorkloadGroup::CloudSuiteLike => write!(f, "CloudSuite-like"),
        }
    }
}

/// One entry of the workload suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The synthetic workload definition.
    pub workload: SyntheticWorkload,
    /// Intended memory-intensity bucket.
    pub intensity: MemoryIntensity,
    /// Benchmark-suite grouping.
    pub group: WorkloadGroup,
}

fn spec(
    name: &str,
    mem_ops_per_kilo: u32,
    pattern: AccessPattern,
    intensity: MemoryIntensity,
    group: WorkloadGroup,
    index: u64,
) -> WorkloadSpec {
    // Give every workload its own 256 MB region so four copies on four cores
    // do not share cache lines.
    let base = 0x1_0000_0000 + index * (256 << 20);
    let workload = SyntheticWorkload::new(name, mem_ops_per_kilo, pattern)
        .with_base_address(base)
        .with_footprint(match pattern {
            AccessPattern::CacheResident => 4 << 10,
            _ => 64 << 20,
        });
    WorkloadSpec {
        workload,
        intensity,
        group,
    }
}

/// The full 50-workload suite mirroring Table 4's distribution:
/// 28 high-intensity, 7 medium and 15 low workloads spread over the three
/// benchmark-suite groups.
#[must_use]
pub fn full_suite() -> Vec<WorkloadSpec> {
    use AccessPattern::{CacheResident, RandomLarge, RowStrided, Streaming};
    use MemoryIntensity::{High, Low, Medium};
    use WorkloadGroup::{CloudSuiteLike, Spec2006Like, Spec2017Like};

    let mut suite = Vec::new();
    let mut idx = 0u64;
    let mut push = |name: &str, ops: u32, pattern, intensity, group| {
        suite.push(spec(name, ops, pattern, intensity, group, idx));
        idx += 1;
    };

    // --- High intensity (28 entries: 14 SPEC2K6-like, 10 SPEC2K17-like, 4 Cloud-like).
    for i in 0..14u32 {
        let pattern = match i % 3 {
            0 => RandomLarge,
            1 => Streaming,
            _ => RowStrided,
        };
        push(
            &format!("h-spec06-{i:02}"),
            30 + (i % 5) * 10,
            pattern,
            High,
            Spec2006Like,
        );
    }
    for i in 0..10u32 {
        let pattern = if i % 2 == 0 { RandomLarge } else { Streaming };
        push(
            &format!("h-spec17-{i:02}"),
            25 + (i % 4) * 12,
            pattern,
            High,
            Spec2017Like,
        );
    }
    for i in 0..4u32 {
        push(
            &format!("h-cloud-{i:02}"),
            40 + i * 8,
            RandomLarge,
            High,
            CloudSuiteLike,
        );
    }

    // --- Medium intensity (7 entries).
    for i in 0..4u32 {
        push(
            &format!("m-spec06-{i:02}"),
            4 + i * 2,
            if i % 2 == 0 { RandomLarge } else { Streaming },
            Medium,
            Spec2006Like,
        );
    }
    for i in 0..3u32 {
        push(
            &format!("m-spec17-{i:02}"),
            3 + i * 3,
            RowStrided,
            Medium,
            Spec2017Like,
        );
    }

    // --- Low intensity (15 entries).
    for i in 0..8u32 {
        push(
            &format!("l-spec06-{i:02}"),
            1,
            CacheResident,
            Low,
            Spec2006Like,
        );
    }
    for i in 0..7u32 {
        push(
            &format!("l-spec17-{i:02}"),
            1,
            CacheResident,
            Low,
            Spec2017Like,
        );
    }

    suite
}

/// A reduced 9-workload suite (3 per intensity bucket) for quick runs and CI.
#[must_use]
pub fn quick_suite() -> Vec<WorkloadSpec> {
    let full = full_suite();
    let mut out = Vec::new();
    for intensity in [
        MemoryIntensity::High,
        MemoryIntensity::Medium,
        MemoryIntensity::Low,
    ] {
        out.extend(
            full.iter()
                .filter(|w| w.intensity == intensity)
                .take(3)
                .cloned(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_50_workloads_with_paper_distribution() {
        let suite = full_suite();
        assert_eq!(suite.len(), 50);
        let count = |i: MemoryIntensity| suite.iter().filter(|w| w.intensity == i).count();
        assert_eq!(count(MemoryIntensity::High), 28);
        assert_eq!(count(MemoryIntensity::Medium), 7);
        assert_eq!(count(MemoryIntensity::Low), 15);
    }

    #[test]
    fn workload_names_are_unique() {
        let suite = full_suite();
        let mut names = std::collections::HashSet::new();
        for w in &suite {
            assert!(
                names.insert(w.workload.name.clone()),
                "duplicate {}",
                w.workload.name
            );
        }
    }

    #[test]
    fn workload_regions_do_not_overlap() {
        let suite = full_suite();
        let mut regions: Vec<(u64, u64)> = suite
            .iter()
            .map(|w| {
                (
                    w.workload.base_address,
                    w.workload.base_address + w.workload.footprint_bytes,
                )
            })
            .collect();
        regions.sort_unstable();
        for pair in regions.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping regions {pair:?}");
        }
    }

    #[test]
    fn quick_suite_covers_all_buckets() {
        let q = quick_suite();
        assert_eq!(q.len(), 9);
        for intensity in [
            MemoryIntensity::High,
            MemoryIntensity::Medium,
            MemoryIntensity::Low,
        ] {
            assert_eq!(q.iter().filter(|w| w.intensity == intensity).count(), 3);
        }
    }

    #[test]
    fn intensity_targets_match_generated_traces() {
        // The generator's memory-ops-per-kilo-instruction should land in the
        // intended RBMPKI band, assuming large-footprint accesses mostly miss.
        for w in quick_suite() {
            let trace = w.workload.generate(20_000, 7);
            let mpki =
                trace.memory_ops_per_pass() as f64 * 1000.0 / trace.instructions_per_pass() as f64;
            match w.intensity {
                MemoryIntensity::High => assert!(mpki >= 10.0, "{}: {mpki}", w.workload.name),
                MemoryIntensity::Medium => {
                    assert!((1.0..30.0).contains(&mpki), "{}: {mpki}", w.workload.name);
                }
                MemoryIntensity::Low => {
                    // Cache-resident workloads have memory ops but almost no
                    // LLC misses; the trace-level bound just has to be small.
                    assert!(mpki <= 2.0, "{}: {mpki}", w.workload.name);
                }
            }
        }
    }

    #[test]
    fn classification_thresholds_match_table4() {
        assert_eq!(MemoryIntensity::classify(12.0), MemoryIntensity::High);
        assert_eq!(MemoryIntensity::classify(10.0), MemoryIntensity::High);
        assert_eq!(MemoryIntensity::classify(5.0), MemoryIntensity::Medium);
        assert_eq!(MemoryIntensity::classify(1.0), MemoryIntensity::Medium);
        assert_eq!(MemoryIntensity::classify(0.5), MemoryIntensity::Low);
    }

    #[test]
    fn group_labels_render() {
        assert_eq!(WorkloadGroup::Spec2006Like.to_string(), "SPEC2K6-like");
        assert_eq!(WorkloadGroup::CloudSuiteLike.to_string(), "CloudSuite-like");
    }
}
