//! Parameterised synthetic workload generator.
//!
//! A [`SyntheticWorkload`] is defined by its memory intensity (memory
//! operations per kilo-instruction), its access pattern and footprint, and
//! its store fraction.  Calling [`SyntheticWorkload::generate`] turns it into
//! a [`Trace`] consumable by the core model.

use cpu_sim::trace::{Trace, TraceOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::patterns::AddressPattern;

/// High-level access-pattern selector for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential streaming over a large footprint (row-buffer friendly but
    /// cache-hostile).
    Streaming,
    /// Uniformly random accesses over a large footprint (row-buffer hostile
    /// and cache hostile).
    RandomLarge,
    /// Accesses confined to a small hot set that fits in the caches.
    CacheResident,
    /// Strided accesses that skip across DRAM rows.
    RowStrided,
}

/// A parameterised synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticWorkload {
    /// Workload name (used for reporting).
    pub name: String,
    /// Memory operations per 1000 instructions.
    pub mem_ops_per_kilo_instr: u32,
    /// Fraction of memory operations that are stores, in `[0, 1]`.
    pub store_fraction: f64,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Footprint in bytes for the large-footprint patterns.
    pub footprint_bytes: u64,
    /// Base physical address of the workload's region (keeps workloads on
    /// different cores in disjoint regions).
    pub base_address: u64,
}

impl SyntheticWorkload {
    /// Creates a workload with the given name and intensity, using defaults
    /// for the remaining fields (random pattern over 64 MB).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        mem_ops_per_kilo_instr: u32,
        pattern: AccessPattern,
    ) -> Self {
        Self {
            name: name.into(),
            mem_ops_per_kilo_instr,
            store_fraction: 0.25,
            pattern,
            footprint_bytes: 64 << 20,
            base_address: 0x1_0000_0000,
        }
    }

    /// Sets the base address of the workload's memory region.
    #[must_use]
    pub fn with_base_address(mut self, base: u64) -> Self {
        self.base_address = base;
        self
    }

    /// Sets the footprint.
    #[must_use]
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Sets the store fraction.
    #[must_use]
    pub fn with_store_fraction(mut self, fraction: f64) -> Self {
        self.store_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    fn address_pattern(&self, seed: u64) -> AddressPattern {
        match self.pattern {
            AccessPattern::Streaming => AddressPattern::Streaming {
                base: self.base_address,
                footprint: self.footprint_bytes,
            },
            AccessPattern::RandomLarge => AddressPattern::Random {
                base: self.base_address,
                footprint: self.footprint_bytes,
                seed,
            },
            AccessPattern::CacheResident => AddressPattern::HotSet {
                base: self.base_address,
                // 64 hot lines (4 KB): comfortably inside even the L1D.
                lines: 64,
            },
            AccessPattern::RowStrided => AddressPattern::Strided {
                base: self.base_address,
                footprint: self.footprint_bytes,
                // 8 KB stride: every access lands in a different DRAM row
                // under row-interleaved layouts.
                stride: 8 * 1024,
            },
        }
    }

    /// Generates a trace containing approximately `instructions` retired
    /// instructions.
    #[must_use]
    pub fn generate(&self, instructions: u64, seed: u64) -> Trace {
        let mut ops = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut addresses = self.address_pattern(seed).stream();
        let mem_per_kilo = u64::from(self.mem_ops_per_kilo_instr.max(1));
        // Compute-instruction gap between consecutive memory operations.
        let gap = (1000 / mem_per_kilo).max(1) as u32;
        let mut emitted: u64 = 0;
        while emitted < instructions {
            if gap > 1 {
                ops.push(TraceOp::Compute(gap - 1));
                emitted += u64::from(gap - 1);
            }
            let addr = addresses.next_address();
            if rng.gen_bool(self.store_fraction) {
                ops.push(TraceOp::Store(addr));
            } else {
                ops.push(TraceOp::Load(addr));
            }
            emitted += 1;
        }
        Trace::new(self.name.clone(), ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_has_requested_intensity() {
        let w = SyntheticWorkload::new("hot", 100, AccessPattern::RandomLarge);
        let trace = w.generate(10_000, 1);
        let instr = trace.instructions_per_pass();
        let mem = trace.memory_ops_per_pass();
        let mpki = mem as f64 * 1000.0 / instr as f64;
        assert!(
            (80.0..120.0).contains(&mpki),
            "memory ops per kilo-instr = {mpki}"
        );
    }

    #[test]
    fn low_intensity_workloads_have_sparse_memory_ops() {
        let w = SyntheticWorkload::new("cold", 1, AccessPattern::CacheResident);
        let trace = w.generate(50_000, 2);
        let mpki =
            trace.memory_ops_per_pass() as f64 * 1000.0 / trace.instructions_per_pass() as f64;
        assert!(mpki <= 1.5, "memory ops per kilo-instr = {mpki}");
    }

    #[test]
    fn store_fraction_is_respected_approximately() {
        let w = SyntheticWorkload::new("stores", 200, AccessPattern::Streaming)
            .with_store_fraction(0.5);
        let trace = w.generate(20_000, 3);
        let stores = trace
            .ops()
            .iter()
            .filter(|op| matches!(op, TraceOp::Store(_)))
            .count() as f64;
        let mems = trace.memory_ops_per_pass() as f64;
        let frac = stores / mems;
        assert!((0.4..0.6).contains(&frac), "store fraction = {frac}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let w = SyntheticWorkload::new("det", 50, AccessPattern::RandomLarge);
        assert_eq!(w.generate(5_000, 9), w.generate(5_000, 9));
        assert_ne!(w.generate(5_000, 9), w.generate(5_000, 10));
    }

    #[test]
    fn cache_resident_pattern_touches_few_lines() {
        let w = SyntheticWorkload::new("resident", 100, AccessPattern::CacheResident)
            .with_store_fraction(0.0);
        let trace = w.generate(20_000, 4);
        let mut lines = std::collections::HashSet::new();
        for op in trace.ops() {
            if let Some(addr) = op.address() {
                lines.insert(addr / 64);
            }
        }
        assert!(lines.len() <= 64);
    }

    #[test]
    fn footprint_and_base_are_respected() {
        let w = SyntheticWorkload::new("bounded", 100, AccessPattern::Streaming)
            .with_base_address(0x2_0000_0000)
            .with_footprint(1 << 20);
        let trace = w.generate(10_000, 5);
        for op in trace.ops() {
            if let Some(addr) = op.address() {
                assert!(addr >= 0x2_0000_0000);
                assert!(addr < 0x2_0000_0000 + (1 << 20));
            }
        }
    }
}
