//! Store-level integration and property tests: bundle round-trips over
//! arbitrary record sets, index rebuild after a simulated crash, and
//! readers racing a writer.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use result_store::{Bundle, ResultStore, StoreRecord};
use serde_json::{Map, Value};

/// Per-test-case scratch directory (unique even across the proptest shim's
/// 64 deterministic cases).
fn scratch(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let root =
        std::env::temp_dir().join(format!("store-props-{}-{tag}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn record(id: u64, value: u64) -> StoreRecord {
    let mut payload = Map::new();
    payload.insert("value".into(), value.into());
    payload.insert("label".into(), format!("cell-{id}").into());
    StoreRecord::new(format!("sim-r2:{{\"id\":{id}}}"), Value::Object(payload))
}

proptest! {
    #[test]
    fn insert_export_import_is_byte_identical(cells in proptest::collection::vec((0u64..500, 0u64..1000), 1..40)) {
        let root = scratch("roundtrip");
        let original = ResultStore::open(root.join("original")).unwrap();
        for (id, value) in &cells {
            original.insert(&record(*id, *value)).unwrap();
        }

        let bundle = root.join("results.bundle");
        Bundle::export(&original, &bundle).unwrap();
        let imported = ResultStore::open(root.join("imported")).unwrap();
        Bundle::import(&imported, &bundle).unwrap();

        // Same keys, and every record re-encodes to the same bytes.
        prop_assert_eq!(original.keys(), imported.keys());
        for key in original.keys() {
            let a = original.get(key).unwrap();
            let b = imported.get(key).unwrap();
            prop_assert_eq!(a.to_line(), b.to_line());
        }
        // And a re-export of the imported store is the same file, byte for
        // byte — the bundle is a fixed point.
        let second = root.join("second.bundle");
        Bundle::export(&imported, &second).unwrap();
        prop_assert_eq!(fs::read(&bundle).unwrap(), fs::read(&second).unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn index_rebuild_survives_torn_tail(keep in 1u64..30, torn_bytes in 1u64..40) {
        // Write keep+1 records, then simulate a crash mid-append of the
        // last one by truncating the segment inside its final line.
        let root = scratch("crash");
        {
            let store = ResultStore::open(&root).unwrap();
            for n in 0..=keep {
                store.insert(&record(n, n * 7)).unwrap();
            }
            store.flush().unwrap();
        }
        let segment = root.join("segments").join("seg-000001.jsonl");
        let data = fs::read(&segment).unwrap();
        let last_line_start = data[..data.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let tear_at = (last_line_start as u64 + torn_bytes.min((data.len() - last_line_start) as u64 - 1)) as u64;
        OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(tear_at)
            .unwrap();

        // The index on disk is now stale (wrong segment size), so the open
        // falls back to a scan, truncates the torn tail, and recovers every
        // record before it.
        let reopened = ResultStore::open(&root).unwrap();
        prop_assert_eq!(reopened.len() as u64, keep);
        for n in 0..keep {
            prop_assert_eq!(reopened.get(record(n, n * 7).key()), Some(record(n, n * 7)));
        }
        prop_assert!(reopened.get(record(keep, keep * 7).key()).is_none());
        prop_assert!(reopened.verify().unwrap().is_clean());
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn concurrent_readers_during_writes_see_consistent_records() {
    let root = scratch("concurrent");
    let store = Arc::new(ResultStore::open(&root).unwrap());

    // Pre-populate half the keyspace so readers always have hits available.
    const PREPOPULATED: u64 = 200;
    const WRITTEN_DURING: u64 = 200;
    for n in 0..PREPOPULATED {
        store.insert(&record(n, n)).unwrap();
    }

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for n in PREPOPULATED..PREPOPULATED + WRITTEN_DURING {
                store.insert(&record(n, n)).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|reader| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                // Lock-free snapshot reads plus direct reads, interleaved
                // with the writer appending to the same active segment.
                let snapshot = store.snapshot();
                for round in 0..2_000u64 {
                    let n = (round * 7 + reader) % PREPOPULATED;
                    let expected = record(n, n);
                    assert_eq!(snapshot.get(expected.key()), Some(expected.clone()));
                    assert_eq!(store.get(expected.key()), Some(expected));
                    // Keys the writer may or may not have written yet must
                    // either miss or decode cleanly — never tear.
                    let racing = record(PREPOPULATED + n % WRITTEN_DURING, 0).key();
                    if let Some(found) = store.get(racing) {
                        assert_eq!(found.key(), racing);
                    }
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }
    assert_eq!(store.len() as u64, PREPOPULATED + WRITTEN_DURING);
    assert!(store.verify().unwrap().is_clean());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn compaction_preserves_reads_and_shrinks_bytes() {
    let root = scratch("compact");
    let store = ResultStore::open(&root).unwrap();
    // Two generations of every record: half the lines are superseded.
    for n in 0..50 {
        store.insert(&record(n, n)).unwrap();
    }
    for n in 0..50 {
        store.insert(&record(n, n + 1)).unwrap();
    }
    let before = store.stats();
    assert_eq!(before.total_records, 100);
    let report = store.compact().unwrap();
    assert_eq!(report.records_after, 50);
    assert!(report.bytes_after < report.bytes_before);
    for n in 0..50 {
        assert_eq!(store.get(record(n, 0).key()), Some(record(n, n + 1)));
    }
    // Reopen after compaction: the rewritten segment replays cleanly.
    drop(store);
    let reopened = ResultStore::open(&root).unwrap();
    assert_eq!(reopened.len(), 50);
    assert!(reopened.verify().unwrap().is_clean());
    let _ = fs::remove_dir_all(&root);
}
