//! The checksummed record and its on-disk line framing.

use std::fmt;

use serde_json::{Map, Value};

/// 64-bit FNV-1a: simple, dependency-free and stable across platforms and
/// compiler versions (unlike `DefaultHasher`, whose algorithm is
/// unspecified).  This is the store's content-hash function; the campaign
/// layer's scenario cache keys are the same hash of the same preimage.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One content-addressed record: an identity (the content-hash preimage)
/// plus a JSON payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// The content-hash preimage.  [`StoreRecord::key`] is the FNV-1a hash
    /// of exactly these bytes, so two records with the same identity are the
    /// same logical result (latest write wins).
    pub identity: String,
    /// The stored result.
    pub payload: Value,
}

/// Why a record line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The line is not valid JSON or lacks the record fields.
    Malformed(String),
    /// The line parsed but its embedded checksum does not match its content.
    ChecksumMismatch {
        /// Checksum stored on the line.
        stored: u64,
        /// Checksum recomputed from the line's identity and payload.
        computed: u64,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Malformed(reason) => write!(f, "malformed record line: {reason}"),
            RecordError::ChecksumMismatch { stored, computed } => write!(
                f,
                "record checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for RecordError {}

impl StoreRecord {
    /// Creates a record.
    pub fn new(identity: impl Into<String>, payload: Value) -> Self {
        Self {
            identity: identity.into(),
            payload,
        }
    }

    /// The record's content-address: the FNV-1a hash of the identity bytes.
    #[must_use]
    pub fn key(&self) -> u64 {
        fnv1a64(self.identity.as_bytes())
    }

    /// The record's key in the canonical 16-hex-digit spelling used by
    /// index files, bundles and the serve protocol.
    #[must_use]
    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.key())
    }

    /// Checksum over identity and canonical payload, stored on every line so
    /// torn or bit-rotted records are detected instead of trusted.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut bytes = self.identity.clone().into_bytes();
        bytes.push(0);
        bytes.extend_from_slice(self.payload.to_string().as_bytes());
        fnv1a64(&bytes)
    }

    /// Encodes the record as its canonical one-line on-disk form (no
    /// trailing newline).  Canonical means byte-stable: the JSON object
    /// members are sorted, so the same record always encodes to the same
    /// bytes — which is what lets bundles round-trip byte-identically.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut map = Map::new();
        map.insert("identity".into(), self.identity.as_str().into());
        map.insert("payload".into(), self.payload.clone());
        map.insert("sum".into(), format!("{:016x}", self.checksum()).into());
        Value::Object(map).to_string()
    }

    /// Decodes one line previously produced by [`StoreRecord::to_line`],
    /// verifying the embedded checksum.
    ///
    /// # Errors
    ///
    /// Returns [`RecordError`] when the line is not a record object or the
    /// checksum does not match.
    pub fn from_line(line: &str) -> Result<Self, RecordError> {
        let value = serde_json::from_str(line.trim_end_matches(['\n', '\r']))
            .map_err(|error| RecordError::Malformed(error.to_string()))?;
        let identity = value
            .get("identity")
            .and_then(Value::as_str)
            .ok_or_else(|| RecordError::Malformed("missing `identity`".into()))?
            .to_string();
        let payload = value
            .get("payload")
            .ok_or_else(|| RecordError::Malformed("missing `payload`".into()))?
            .clone();
        let stored = value
            .get("sum")
            .and_then(Value::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| RecordError::Malformed("missing `sum`".into()))?;
        let record = Self { identity, payload };
        let computed = record.checksum();
        if stored != computed {
            return Err(RecordError::ChecksumMismatch { stored, computed });
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> StoreRecord {
        let mut payload = Map::new();
        payload.insert("metric".into(), 42u64.into());
        payload.insert("note".into(), "line\nbreak, comma".into());
        StoreRecord::new("sim-r2:{\"kind\":\"x\"}", Value::Object(payload))
    }

    #[test]
    fn line_roundtrip_is_byte_identical() {
        let line = record().to_line();
        assert!(!line.contains('\n'), "framing must stay one line: {line}");
        let decoded = StoreRecord::from_line(&line).unwrap();
        assert_eq!(decoded, record());
        assert_eq!(decoded.to_line(), line);
    }

    #[test]
    fn key_is_the_fnv_hash_of_the_identity() {
        let r = record();
        assert_eq!(r.key(), fnv1a64(r.identity.as_bytes()));
        assert_eq!(r.key_hex().len(), 16);
    }

    #[test]
    fn corruption_is_detected() {
        let line = record().to_line();
        // Flip a payload byte without breaking the JSON framing.
        let tampered = line.replace("42", "43");
        assert!(matches!(
            StoreRecord::from_line(&tampered),
            Err(RecordError::ChecksumMismatch { .. })
        ));
        // A torn prefix is malformed, not silently accepted.
        assert!(matches!(
            StoreRecord::from_line(&line[..line.len() / 2]),
            Err(RecordError::Malformed(_))
        ));
    }
}
