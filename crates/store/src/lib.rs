//! # result-store
//!
//! A content-addressed result store: the persistence substrate behind the
//! campaign cache and the `prac-bench serve` service.
//!
//! Results are [`StoreRecord`]s — an *identity* string (the content-hash
//! preimage, e.g. the campaign layer's `sim-r2:{canonical spec JSON}`) plus
//! an arbitrary JSON *payload*.  The record's key is the stable 64-bit
//! FNV-1a hash of the identity bytes, which makes the store a drop-in home
//! for the pre-existing scenario cache keys: same preimage, same key, no
//! cache entry orphaned by the migration.
//!
//! On disk a store is a directory of append-only newline-delimited segment
//! files plus a rebuildable index:
//!
//! ```text
//! <root>/
//!   segments/seg-000001.jsonl   one checksummed JSON record per line
//!   segments/seg-000002.jsonl   (a new segment starts when the active one
//!   ...                          exceeds the roll-over size)
//!   index.json                  key -> (segment, offset, len), written via
//!                               temp-file + rename; safe to delete
//! ```
//!
//! Crash-safety model:
//!
//! * every record line carries a FNV-1a checksum; a torn tail write (the
//!   crash case) fails to parse or checksum and is truncated away on the
//!   next open,
//! * corrupt lines *inside* a segment are quarantined in place — skipped by
//!   the loader, counted by [`ResultStore::stats`], reported by
//!   [`ResultStore::verify`] and dropped by [`ResultStore::compact`] —
//!   never a crash,
//! * the index file is an optimisation only: if it is missing, stale or
//!   corrupt, opening the store rebuilds it by scanning the segments,
//! * all whole-file writes (index, compacted segments, bundles) go through
//!   [`write_atomic`]: write to a temp file in the same directory, flush,
//!   rename over the target.
//!
//! Concurrency model: many readers, single writer.  The in-memory index
//! lives behind a reader-writer lock that the writer holds only for the
//! in-memory map update (never during file I/O), and
//! [`ResultStore::snapshot`] hands readers an immutable [`StoreSnapshot`]
//! whose lookups take no lock at all — the hot path of a serving process is
//! an index probe plus one positioned segment read.
//!
//! [`Bundle`]s are single-file archives of a store's live records, so result
//! sets move between CI, laptops and future distributed sweep workers with
//! plain file copies: `export` on one machine, `import` on another,
//! first-write-wins on key conflicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bundle;
mod record;
mod store;

pub use bundle::{Bundle, BundleReport};
pub use record::{fnv1a64, RecordError, StoreRecord};
pub use store::{
    CompactReport, EntryLocation, ResultStore, StoreSnapshot, StoreStats, VerifyReport,
};

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Writes `bytes` to `path` atomically: the content goes to a temp file in
/// the same directory, is flushed and synced, and is then renamed over the
/// target, so a crash mid-write can never leave a torn file at `path`.
///
/// # Errors
///
/// Propagates the error if the temp file cannot be created, written, synced
/// or renamed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let directory = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(directory)?;
    let file_name = path
        .file_name()
        .and_then(|name| name.to_str())
        .unwrap_or("file");
    // The temp name includes the pid so two processes writing the same
    // target cannot collide on the temp file itself.
    let temp = directory.join(format!(".{file_name}.tmp-{}", std::process::id()));
    let mut out = fs::File::create(&temp)?;
    out.write_all(bytes)?;
    out.sync_all()?;
    drop(out);
    match fs::rename(&temp, path) {
        Ok(()) => Ok(()),
        Err(error) => {
            let _ = fs::remove_file(&temp);
            Err(error)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_content() {
        let dir = std::env::temp_dir().join(format!("store-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("file.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No temp litter left behind.
        let litter: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
    }
}
