//! Portable single-file bundles: export a store's live records, import them
//! into another store.

use std::fs;
use std::io;
use std::path::Path;

use serde_json::{Map, Value};

use crate::record::StoreRecord;
use crate::store::ResultStore;
use crate::write_atomic;

/// Magic string on a bundle's header line.
const BUNDLE_MAGIC: &str = "prac-result-store";

/// Bundle format version.
const BUNDLE_VERSION: u64 = 1;

/// Import/export of portable result bundles.
///
/// A bundle is a single text file: a JSON header line followed by one
/// checksummed record line per live record, sorted by key — so exporting
/// the same store twice yields byte-identical bundles, and a bundle moves
/// between machines as a plain file copy.
pub struct Bundle;

/// Outcome of a bundle export or import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BundleReport {
    /// Records in the bundle.
    pub records: u64,
    /// Records newly inserted by an import (0 for exports).
    pub imported: u64,
    /// Records skipped by an import because the key already existed
    /// (first write wins; 0 for exports).
    pub skipped: u64,
}

impl Bundle {
    /// Exports the store's live records to `path`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading records or writing the bundle.
    pub fn export(store: &ResultStore, path: &Path) -> io::Result<BundleReport> {
        let snapshot = store.snapshot();
        let mut keys = store.keys();
        keys.sort_unstable();
        let mut text = String::new();
        let mut header = Map::new();
        header.insert("bundle".into(), BUNDLE_MAGIC.into());
        header.insert("records".into(), (keys.len() as u64).into());
        header.insert("version".into(), BUNDLE_VERSION.into());
        text.push_str(&Value::Object(header).to_string());
        text.push('\n');
        for key in &keys {
            let record = snapshot.get(*key).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("record {key:016x} unreadable during export"),
                )
            })?;
            text.push_str(&record.to_line());
            text.push('\n');
        }
        write_atomic(path, text.as_bytes())?;
        Ok(BundleReport {
            records: keys.len() as u64,
            ..BundleReport::default()
        })
    }

    /// Imports a bundle into the store.  Keys already present are skipped
    /// (first write wins — payloads for the same key may legitimately differ
    /// in incidental fields like wall-clock timings, and the local result is
    /// just as valid).  A corrupt bundle line fails the whole import loudly
    /// rather than silently importing a subset.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a missing/of-the-wrong-kind header, a
    /// version mismatch, a record-count mismatch, or any line that fails the
    /// record checksum; propagates I/O errors from reading or inserting.
    pub fn import(store: &ResultStore, path: &Path) -> io::Result<BundleReport> {
        let text = fs::read_to_string(path)?;
        let mut lines = text.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| invalid_data("empty bundle file"))?;
        let header =
            serde_json::from_str(header_line).map_err(|error| invalid_data(&error.to_string()))?;
        if header.get("bundle").and_then(Value::as_str) != Some(BUNDLE_MAGIC) {
            return Err(invalid_data("not a result-store bundle"));
        }
        if header.get("version").and_then(Value::as_u64) != Some(BUNDLE_VERSION) {
            return Err(invalid_data("unsupported bundle version"));
        }
        let declared = header
            .get("records")
            .and_then(Value::as_u64)
            .ok_or_else(|| invalid_data("header missing record count"))?;

        let mut report = BundleReport::default();
        for (number, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let record = StoreRecord::from_line(line)
                .map_err(|error| invalid_data(&format!("bundle line {}: {error}", number + 2)))?;
            report.records += 1;
            if store.contains(record.key()) {
                report.skipped += 1;
            } else {
                store.insert(&record)?;
                report.imported += 1;
            }
        }
        if report.records != declared {
            return Err(invalid_data(&format!(
                "bundle truncated: header declares {declared} records, found {}",
                report.records
            )));
        }
        store.flush()?;
        Ok(report)
    }
}

fn invalid_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("store-bundle-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn record(n: u64) -> StoreRecord {
        let mut payload = Map::new();
        payload.insert("value".into(), n.into());
        StoreRecord::new(format!("id-{n}"), Value::Object(payload))
    }

    #[test]
    fn export_import_roundtrip_preserves_records() {
        let root = temp_root("roundtrip");
        let store = ResultStore::open(root.join("a")).unwrap();
        for n in 0..5 {
            store.insert(&record(n)).unwrap();
        }
        let bundle = root.join("results.bundle");
        let exported = Bundle::export(&store, &bundle).unwrap();
        assert_eq!(exported.records, 5);

        let fresh = ResultStore::open(root.join("b")).unwrap();
        let imported = Bundle::import(&fresh, &bundle).unwrap();
        assert_eq!(imported.records, 5);
        assert_eq!(imported.imported, 5);
        assert_eq!(imported.skipped, 0);
        for n in 0..5 {
            assert_eq!(fresh.get(record(n).key()), Some(record(n)));
        }

        // Re-import is a no-op: first write wins.
        let again = Bundle::import(&fresh, &bundle).unwrap();
        assert_eq!(again.imported, 0);
        assert_eq!(again.skipped, 5);
    }

    #[test]
    fn export_is_deterministic() {
        let root = temp_root("deterministic");
        let store = ResultStore::open(root.join("store")).unwrap();
        for n in (0..5).rev() {
            store.insert(&record(n)).unwrap();
        }
        let first = root.join("first.bundle");
        let second = root.join("second.bundle");
        Bundle::export(&store, &first).unwrap();
        Bundle::export(&store, &second).unwrap();
        assert_eq!(fs::read(&first).unwrap(), fs::read(&second).unwrap());
    }

    #[test]
    fn corrupt_bundle_fails_loudly() {
        let root = temp_root("corrupt");
        let store = ResultStore::open(root.join("store")).unwrap();
        store.insert(&record(1)).unwrap();
        let bundle = root.join("results.bundle");
        Bundle::export(&store, &bundle).unwrap();

        let mut text = fs::read_to_string(&bundle).unwrap();
        text = text.replace("\"value\":1", "\"value\":9");
        fs::write(&bundle, &text).unwrap();
        let fresh = ResultStore::open(root.join("fresh")).unwrap();
        let error = Bundle::import(&fresh, &bundle).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        assert!(fresh.is_empty(), "nothing imported from a corrupt bundle");

        // A truncated bundle (header promises more) also fails.
        let valid = fs::read_to_string(&bundle).unwrap();
        let header_only = valid.lines().next().unwrap().to_string() + "\n";
        fs::write(&bundle, header_only).unwrap();
        let error = Bundle::import(&fresh, &bundle).unwrap_err();
        assert!(error.to_string().contains("truncated"), "{error}");
    }
}
