//! The on-disk store: append-only segments, rebuildable index, compaction.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use serde_json::{Map, Value};

use crate::record::StoreRecord;
use crate::write_atomic;

/// A new segment is started once the active one crosses this size, so
/// compaction and bundle transfers work on bounded files.
const SEGMENT_ROLL_BYTES: u64 = 8 << 20;

/// The index file is rewritten after this many inserts (and on flush/drop);
/// anything newer is recovered by the segment scan on the next open.
const INDEX_FLUSH_EVERY: u64 = 64;

/// On-disk index format version.
const INDEX_VERSION: u64 = 1;

/// Where a record lives on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryLocation {
    /// Segment file name (relative to the store's `segments/` directory).
    pub segment: String,
    /// Byte offset of the record line within the segment.
    pub offset: u64,
    /// Byte length of the record line (excluding the trailing newline).
    pub len: u64,
}

#[derive(Debug, Clone)]
struct SegmentMeta {
    name: String,
    bytes: u64,
    records: u64,
}

#[derive(Debug, Default)]
struct IndexState {
    entries: HashMap<u64, EntryLocation>,
    segments: Vec<SegmentMeta>,
    /// Records written and later replaced by a newer write of the same key
    /// (still occupying segment bytes until compaction).
    superseded: u64,
    /// Unparseable or checksum-failing lines quarantined in place.
    corrupt: u64,
}

#[derive(Debug)]
struct WriterState {
    file: File,
    active: String,
    bytes: u64,
    since_flush: u64,
}

/// Aggregate store counters, as reported by `prac-bench store stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct keys currently resolvable.
    pub live_records: u64,
    /// Record lines across all segments, including superseded ones.
    pub total_records: u64,
    /// Superseded (duplicate-key) record lines awaiting compaction.
    pub superseded_records: u64,
    /// Quarantined corrupt lines awaiting compaction.
    pub corrupt_lines: u64,
    /// Number of segment files.
    pub segments: u64,
    /// Total segment bytes on disk.
    pub bytes: u64,
}

impl StoreStats {
    /// Live records per stored record line: 1.0 for a fully compacted store,
    /// lower when superseded duplicates are still occupying segment bytes.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.total_records == 0 {
            1.0
        } else {
            self.live_records as f64 / self.total_records as f64
        }
    }
}

/// Outcome of a full [`ResultStore::verify`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Record lines whose checksum and framing verified.
    pub records_verified: u64,
    /// Lines that failed to parse or checksum during the scan.
    pub corrupt_lines: u64,
    /// Index entries whose on-disk record re-hashes to a different key (or
    /// is unreadable at the indexed location).
    pub key_mismatches: u64,
    /// Live keys found in the segments but absent from the in-memory index.
    pub missing_from_index: u64,
}

impl VerifyReport {
    /// Whether the store verified clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt_lines == 0 && self.key_mismatches == 0 && self.missing_from_index == 0
    }
}

/// Outcome of a [`ResultStore::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Record lines before compaction (live + superseded + corrupt).
    pub records_before: u64,
    /// Live records rewritten into the compacted segment.
    pub records_after: u64,
    /// Segment bytes before compaction.
    pub bytes_before: u64,
    /// Segment bytes after compaction.
    pub bytes_after: u64,
}

/// A content-addressed result store rooted at a directory.
///
/// See the crate docs for the on-disk format and the crash-safety and
/// concurrency model.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    index: RwLock<IndexState>,
    writer: Mutex<WriterState>,
}

/// An immutable view of the store for lock-free readers.
///
/// Lookups on a snapshot touch no lock: the entry table is a frozen
/// [`Arc`]ed map and every read opens its own file handle.  Records inserted
/// after the snapshot was taken are not visible — take a fresh snapshot to
/// observe them.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    root: PathBuf,
    entries: Arc<HashMap<u64, EntryLocation>>,
}

impl StoreSnapshot {
    /// Number of live records visible to this snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot sees no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a record up by key; `None` on miss or unreadable record.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<StoreRecord> {
        let location = self.entries.get(&key)?;
        read_record(&self.root, location).ok()
    }
}

impl ResultStore {
    /// Opens (and creates if needed) a store rooted at `root`.
    ///
    /// If a valid `index.json` matching the segment files exists it is
    /// loaded directly; otherwise the segments are scanned and the index
    /// rebuilt.  A torn tail on the last segment (the crash-mid-append case)
    /// is truncated away; corrupt lines elsewhere are quarantined in place.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating directories or reading segments.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        let segments_dir = root.join("segments");
        fs::create_dir_all(&segments_dir)?;

        let state = match load_index(&root) {
            Some(state) => state,
            None => scan_segments(&segments_dir)?,
        };
        let mut state = state;
        if state.segments.is_empty() {
            let name = "seg-000001.jsonl".to_string();
            File::create(segments_dir.join(&name))?;
            state.segments.push(SegmentMeta {
                name,
                bytes: 0,
                records: 0,
            });
        }
        let active = state
            .segments
            .last()
            .expect("at least one segment exists")
            .clone();
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(segments_dir.join(&active.name))?;

        let store = Self {
            root,
            index: RwLock::new(state),
            writer: Mutex::new(WriterState {
                file,
                active: active.name,
                bytes: active.bytes,
                since_flush: 0,
            }),
        };
        store.flush_index()?;
        Ok(store)
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.read().expect("store index lock").entries.len()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a record with this key is present.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.index
            .read()
            .expect("store index lock")
            .entries
            .contains_key(&key)
    }

    /// The live keys, sorted (deterministic iteration for exports/tests).
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .index
            .read()
            .expect("store index lock")
            .entries
            .keys()
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Looks a record up by key; `None` on miss or unreadable record.  The
    /// index probe takes a brief read lock (never blocked by writer I/O);
    /// the segment read takes no lock at all.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<StoreRecord> {
        let location = self
            .index
            .read()
            .expect("store index lock")
            .entries
            .get(&key)
            .cloned()?;
        read_record(&self.root, &location).ok()
    }

    /// Takes an immutable snapshot for lock-free readers.
    #[must_use]
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            root: self.root.clone(),
            entries: Arc::new(self.index.read().expect("store index lock").entries.clone()),
        }
    }

    /// Appends a record and returns its key.  A record with the same key
    /// supersedes the previous one (latest write wins); the superseded line
    /// stays on disk until [`ResultStore::compact`].
    ///
    /// The record bytes are fully written to the segment *before* the index
    /// is updated, so a concurrent reader can never resolve a key to
    /// not-yet-written bytes, and a crash between the two leaves a record
    /// the next open's scan recovers.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the segment append or index flush.
    pub fn insert(&self, record: &StoreRecord) -> io::Result<u64> {
        let key = record.key();
        let line = record.to_line();
        let line_len = line.len() as u64;

        let mut writer = self.writer.lock().expect("store writer lock");
        // Roll to a fresh segment when the active one is full.
        if writer.bytes > 0 && writer.bytes + line_len + 1 > SEGMENT_ROLL_BYTES {
            let next = next_segment_name(&writer.active);
            let file = OpenOptions::new()
                .append(true)
                .create_new(true)
                .open(self.root.join("segments").join(&next))?;
            writer.file = file;
            writer.active = next.clone();
            writer.bytes = 0;
            self.index
                .write()
                .expect("store index lock")
                .segments
                .push(SegmentMeta {
                    name: next,
                    bytes: 0,
                    records: 0,
                });
        }

        let offset = writer.bytes;
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        writer.file.write_all(&bytes)?;
        writer.bytes += bytes.len() as u64;

        {
            let mut index = self.index.write().expect("store index lock");
            let location = EntryLocation {
                segment: writer.active.clone(),
                offset,
                len: line_len,
            };
            if index.entries.insert(key, location).is_some() {
                index.superseded += 1;
            }
            let meta = index
                .segments
                .iter_mut()
                .rev()
                .find(|meta| meta.name == writer.active)
                .expect("active segment is tracked");
            meta.bytes = writer.bytes;
            meta.records += 1;
        }

        writer.since_flush += 1;
        if writer.since_flush >= INDEX_FLUSH_EVERY {
            writer.since_flush = 0;
            drop(writer);
            self.flush_index()?;
        }
        Ok(key)
    }

    /// Durably persists the index and syncs the active segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sync or the atomic index write.
    pub fn flush(&self) -> io::Result<()> {
        {
            let mut writer = self.writer.lock().expect("store writer lock");
            writer.file.sync_data()?;
            writer.since_flush = 0;
        }
        self.flush_index()
    }

    fn flush_index(&self) -> io::Result<()> {
        let rendered = {
            let index = self.index.read().expect("store index lock");
            render_index(&index)
        };
        write_atomic(&self.root.join("index.json"), rendered.as_bytes())
    }

    /// Aggregate counters (live/total records, bytes, dedup ratio inputs).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let index = self.index.read().expect("store index lock");
        StoreStats {
            live_records: index.entries.len() as u64,
            total_records: index.segments.iter().map(|meta| meta.records).sum(),
            superseded_records: index.superseded,
            corrupt_lines: index.corrupt,
            segments: index.segments.len() as u64,
            bytes: index.segments.iter().map(|meta| meta.bytes).sum(),
        }
    }

    /// Re-reads every segment line, re-hashes every record, and cross-checks
    /// the index, reporting (instead of crashing on) any mismatch.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading segment files; integrity problems
    /// are counted in the report, not raised as errors.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        // Pass 1: scan the segments independently of the index.
        let mut scanned: HashMap<(String, u64), u64> = HashMap::new();
        let mut live: HashMap<u64, (String, u64)> = HashMap::new();
        let index = self.index.read().expect("store index lock");
        for meta in &index.segments {
            let path = self.root.join("segments").join(&meta.name);
            let data = fs::read(&path)?;
            for (offset, line) in segment_lines(&data[..meta.bytes.min(data.len() as u64) as usize])
            {
                match StoreRecord::from_line(line) {
                    Ok(record) => {
                        report.records_verified += 1;
                        scanned.insert((meta.name.clone(), offset), record.key());
                        live.insert(record.key(), (meta.name.clone(), offset));
                    }
                    Err(_) => report.corrupt_lines += 1,
                }
            }
        }
        // Pass 2: every index entry must resolve to a record hashing to its
        // own key, and every live on-disk key must be indexed.
        for (key, location) in &index.entries {
            match scanned.get(&(location.segment.clone(), location.offset)) {
                Some(computed) if computed == key => {}
                _ => report.key_mismatches += 1,
            }
        }
        for key in live.keys() {
            if !index.entries.contains_key(key) {
                report.missing_from_index += 1;
            }
        }
        Ok(report)
    }

    /// Rewrites the live records into one fresh segment (sorted by key, so
    /// the result is deterministic), dropping superseded and corrupt lines,
    /// then removes the old segments.
    ///
    /// Crash-safe ordering: the compacted segment is fully written and
    /// renamed into place *before* the old segments are deleted; a crash in
    /// between leaves duplicate records that latest-wins replay resolves.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading, writing or deleting segments.
    pub fn compact(&self) -> io::Result<CompactReport> {
        let mut writer = self.writer.lock().expect("store writer lock");
        let before = self.stats();

        // Gather the live records in key order.
        let mut keys: Vec<u64> = {
            let index = self.index.read().expect("store index lock");
            index.entries.keys().copied().collect()
        };
        keys.sort_unstable();
        let mut compacted = String::new();
        let mut entries: HashMap<u64, EntryLocation> = HashMap::new();
        let next = next_segment_name(&writer.active);
        for key in keys {
            let location = self
                .index
                .read()
                .expect("store index lock")
                .entries
                .get(&key)
                .cloned()
                .expect("key listed above");
            let record = read_record(&self.root, &location)?;
            let line = record.to_line();
            entries.insert(
                key,
                EntryLocation {
                    segment: next.clone(),
                    offset: compacted.len() as u64,
                    len: line.len() as u64,
                },
            );
            compacted.push_str(&line);
            compacted.push('\n');
        }

        // Write the new segment, swap the in-memory state, then delete the
        // old segments.
        let segments_dir = self.root.join("segments");
        write_atomic(&segments_dir.join(&next), compacted.as_bytes())?;
        let old_segments: Vec<String> = {
            let mut index = self.index.write().expect("store index lock");
            let old = index
                .segments
                .iter()
                .map(|meta| meta.name.clone())
                .collect();
            index.entries = entries;
            index.segments = vec![SegmentMeta {
                name: next.clone(),
                bytes: compacted.len() as u64,
                records: index.entries.len() as u64,
            }];
            index.superseded = 0;
            index.corrupt = 0;
            old
        };
        for name in old_segments {
            if name != next {
                let _ = fs::remove_file(segments_dir.join(name));
            }
        }
        writer.file = OpenOptions::new()
            .append(true)
            .open(segments_dir.join(&next))?;
        writer.active = next;
        writer.bytes = compacted.len() as u64;
        writer.since_flush = 0;
        drop(writer);
        self.flush_index()?;

        let after = self.stats();
        Ok(CompactReport {
            records_before: before.total_records,
            records_after: after.total_records,
            bytes_before: before.bytes,
            bytes_after: after.bytes,
        })
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        // Best-effort index persistence; the index is rebuildable, so a
        // failure here only costs a segment scan on the next open.
        let _ = self.flush_index();
    }
}

/// Splits segment bytes into `(offset, line)` pairs at newline boundaries.
/// A final chunk without a trailing newline is *not* yielded — that is the
/// torn-tail shape, which the open-time scan truncates away.
fn segment_lines(data: &[u8]) -> impl Iterator<Item = (u64, &str)> {
    let mut offset = 0usize;
    std::iter::from_fn(move || {
        while offset < data.len() {
            let rest = &data[offset..];
            let end = rest.iter().position(|&b| b == b'\n')?;
            let start = offset;
            offset += end + 1;
            let line = std::str::from_utf8(&rest[..end]).unwrap_or("");
            if line.is_empty() {
                continue;
            }
            return Some((start as u64, line));
        }
        None
    })
}

/// Scans every segment file, rebuilding the index from scratch.  Truncates
/// a torn tail on the final segment; counts (and skips) corrupt lines
/// elsewhere.
fn scan_segments(segments_dir: &Path) -> io::Result<IndexState> {
    let mut names: Vec<String> = fs::read_dir(segments_dir)?
        .filter_map(Result::ok)
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| segment_number(name).is_some())
        .collect();
    names.sort();

    let mut state = IndexState::default();
    let last_index = names.len().saturating_sub(1);
    for (segment_index, name) in names.iter().enumerate() {
        let path = segments_dir.join(name);
        let data = fs::read(&path)?;
        // A final chunk with no trailing newline is a torn append.  On the
        // last (active) segment, truncate it so later appends start at a
        // clean record boundary; on earlier segments it is quarantined by
        // simply not being indexed.
        let valid_bytes = match data.iter().rposition(|&b| b == b'\n') {
            Some(last_newline) => last_newline + 1,
            None => 0,
        };
        if valid_bytes < data.len() {
            state.corrupt += 1;
            if segment_index == last_index {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_bytes as u64)?;
                file.sync_data()?;
            }
        }
        let mut meta = SegmentMeta {
            name: name.clone(),
            bytes: valid_bytes as u64,
            records: 0,
        };
        for (offset, line) in segment_lines(&data[..valid_bytes]) {
            match StoreRecord::from_line(line) {
                Ok(record) => {
                    meta.records += 1;
                    let location = EntryLocation {
                        segment: name.clone(),
                        offset,
                        len: line.len() as u64,
                    };
                    if state.entries.insert(record.key(), location).is_some() {
                        state.superseded += 1;
                    }
                }
                Err(_) => state.corrupt += 1,
            }
        }
        state.segments.push(meta);
    }
    Ok(state)
}

fn read_record(root: &Path, location: &EntryLocation) -> io::Result<StoreRecord> {
    let mut file = File::open(root.join("segments").join(&location.segment))?;
    file.seek(SeekFrom::Start(location.offset))?;
    let mut bytes = vec![0u8; location.len as usize];
    file.read_exact(&mut bytes)?;
    let line = std::str::from_utf8(&bytes)
        .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))?;
    StoreRecord::from_line(line)
        .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
}

fn render_index(index: &IndexState) -> String {
    let mut doc = Map::new();
    doc.insert("version".into(), INDEX_VERSION.into());
    doc.insert("superseded".into(), index.superseded.into());
    doc.insert("corrupt".into(), index.corrupt.into());
    doc.insert(
        "segments".into(),
        Value::Array(
            index
                .segments
                .iter()
                .map(|meta| {
                    let mut m = Map::new();
                    m.insert("name".into(), meta.name.as_str().into());
                    m.insert("bytes".into(), meta.bytes.into());
                    m.insert("records".into(), meta.records.into());
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    let mut entries = Map::new();
    for (key, location) in &index.entries {
        let mut m = Map::new();
        m.insert("segment".into(), location.segment.as_str().into());
        m.insert("offset".into(), location.offset.into());
        m.insert("len".into(), location.len.into());
        entries.insert(format!("{key:016x}"), Value::Object(m));
    }
    doc.insert("entries".into(), Value::Object(entries));
    Value::Object(doc).to_string()
}

/// Loads `index.json` if it exists, parses, and exactly matches the segment
/// files on disk (same set, same sizes).  Any discrepancy — missing file,
/// size drift, unknown extra segment, parse failure — returns `None` and
/// the caller falls back to a full scan.
fn load_index(root: &Path) -> Option<IndexState> {
    let text = fs::read_to_string(root.join("index.json")).ok()?;
    let value = serde_json::from_str(&text).ok()?;
    if value.get("version").and_then(Value::as_u64) != Some(INDEX_VERSION) {
        return None;
    }
    let mut state = IndexState {
        superseded: value.get("superseded").and_then(Value::as_u64)?,
        corrupt: value.get("corrupt").and_then(Value::as_u64)?,
        ..IndexState::default()
    };
    for meta in value.get("segments").and_then(Value::as_array)? {
        let name = meta.get("name").and_then(Value::as_str)?.to_string();
        let bytes = meta.get("bytes").and_then(Value::as_u64)?;
        let on_disk = fs::metadata(root.join("segments").join(&name)).ok()?;
        if on_disk.len() != bytes {
            return None;
        }
        state.segments.push(SegmentMeta {
            name,
            bytes,
            records: meta.get("records").and_then(Value::as_u64)?,
        });
    }
    // An on-disk segment the index does not know about means the index is
    // stale (e.g. written by an older process than the last writer).
    let known: Vec<&str> = state
        .segments
        .iter()
        .map(|meta| meta.name.as_str())
        .collect();
    for entry in fs::read_dir(root.join("segments")).ok()?.flatten() {
        if let Ok(name) = entry.file_name().into_string() {
            if segment_number(&name).is_some() && !known.contains(&name.as_str()) {
                return None;
            }
        }
    }
    for (key_hex, location) in value.get("entries").and_then(Value::as_object)? {
        let key = u64::from_str_radix(key_hex, 16).ok()?;
        let segment = location.get("segment").and_then(Value::as_str)?.to_string();
        if !known.contains(&segment.as_str()) {
            return None;
        }
        state.entries.insert(
            key,
            EntryLocation {
                segment,
                offset: location.get("offset").and_then(Value::as_u64)?,
                len: location.get("len").and_then(Value::as_u64)?,
            },
        );
    }
    Some(state)
}

fn segment_number(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

fn next_segment_name(current: &str) -> String {
    let next = segment_number(current).map_or(1, |n| n + 1);
    format!("seg-{next:06}.jsonl")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("result-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn record(n: u64) -> StoreRecord {
        let mut payload = Map::new();
        payload.insert("value".into(), n.into());
        StoreRecord::new(format!("id-{n}"), Value::Object(payload))
    }

    #[test]
    fn insert_get_roundtrip_and_reopen() {
        let root = temp_root("roundtrip");
        let store = ResultStore::open(&root).unwrap();
        let key = store.insert(&record(1)).unwrap();
        store.insert(&record(2)).unwrap();
        assert_eq!(store.get(key), Some(record(1)));
        assert_eq!(store.len(), 2);
        store.flush().unwrap();
        drop(store);

        let reopened = ResultStore::open(&root).unwrap();
        assert_eq!(reopened.get(key), Some(record(1)));
        assert_eq!(reopened.len(), 2);
        assert!(reopened.get(0xdead_beef).is_none());
    }

    #[test]
    fn latest_write_wins_and_counts_superseded() {
        let root = temp_root("supersede");
        let store = ResultStore::open(&root).unwrap();
        let updated = StoreRecord::new("id-1", Value::Bool(true));
        store.insert(&record(1)).unwrap();
        let key = store.insert(&updated).unwrap();
        assert_eq!(store.get(key), Some(updated.clone()));
        let stats = store.stats();
        assert_eq!(stats.live_records, 1);
        assert_eq!(stats.total_records, 2);
        assert_eq!(stats.superseded_records, 1);
        assert!(stats.dedup_ratio() < 1.0);

        // Compaction drops the superseded line and keeps the latest.
        let report = store.compact().unwrap();
        assert_eq!(report.records_before, 2);
        assert_eq!(report.records_after, 1);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.get(key), Some(updated));
        assert!((store.stats().dedup_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn missing_index_is_rebuilt_by_scanning() {
        let root = temp_root("rebuild");
        let store = ResultStore::open(&root).unwrap();
        for n in 0..10 {
            store.insert(&record(n)).unwrap();
        }
        drop(store);
        fs::remove_file(root.join("index.json")).unwrap();
        let reopened = ResultStore::open(&root).unwrap();
        assert_eq!(reopened.len(), 10);
        for n in 0..10 {
            assert_eq!(reopened.get(record(n).key()), Some(record(n)));
        }
    }

    #[test]
    fn stale_index_falls_back_to_scan() {
        let root = temp_root("stale-index");
        let store = ResultStore::open(&root).unwrap();
        store.insert(&record(1)).unwrap();
        store.flush().unwrap();
        drop(store);
        // Append a record behind the index's back (simulates an index that
        // was not flushed before a crash).
        let line = record(2).to_line();
        let mut file = OpenOptions::new()
            .append(true)
            .open(root.join("segments").join("seg-000001.jsonl"))
            .unwrap();
        file.write_all(line.as_bytes()).unwrap();
        file.write_all(b"\n").unwrap();
        drop(file);
        let reopened = ResultStore::open(&root).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(record(2).key()), Some(record(2)));
    }

    #[test]
    fn corrupt_middle_line_is_quarantined_not_fatal() {
        let root = temp_root("quarantine");
        let store = ResultStore::open(&root).unwrap();
        store.insert(&record(1)).unwrap();
        store.flush().unwrap();
        drop(store);
        let path = root.join("segments").join("seg-000001.jsonl");
        let mut data = fs::read(&path).unwrap();
        data.extend_from_slice(b"{\"not\":\"a record\"}\n");
        fs::write(&path, &data).unwrap();
        let line = record(3).to_line();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(line.as_bytes()).unwrap();
        file.write_all(b"\n").unwrap();
        drop(file);

        let reopened = ResultStore::open(&root).unwrap();
        assert_eq!(reopened.len(), 2, "good records on both sides survive");
        assert_eq!(reopened.stats().corrupt_lines, 1);
        let verify = reopened.verify().unwrap();
        assert_eq!(verify.corrupt_lines, 1);
        assert_eq!(verify.key_mismatches, 0);
        // Compaction drops the quarantined line.
        reopened.compact().unwrap();
        assert!(reopened.verify().unwrap().is_clean());
        assert_eq!(reopened.len(), 2);
    }

    #[test]
    fn verify_reports_key_content_mismatches() {
        let root = temp_root("verify-mismatch");
        let store = ResultStore::open(&root).unwrap();
        store.insert(&record(1)).unwrap();
        store.flush().unwrap();
        assert!(store.verify().unwrap().is_clean());
        // Re-point the index entry at a bogus offset.
        {
            let mut index = store.index.write().unwrap();
            let location = index.entries.values_mut().next().unwrap();
            location.offset += 1;
        }
        let report = store.verify().unwrap();
        assert_eq!(report.key_mismatches, 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn segments_roll_over_and_names_increment() {
        assert_eq!(next_segment_name("seg-000001.jsonl"), "seg-000002.jsonl");
        assert_eq!(next_segment_name("garbage"), "seg-000001.jsonl");
        assert_eq!(segment_number("seg-000042.jsonl"), Some(42));
        assert_eq!(segment_number("index.json"), None);
    }

    #[test]
    fn snapshot_is_stable_under_later_writes() {
        let root = temp_root("snapshot");
        let store = ResultStore::open(&root).unwrap();
        store.insert(&record(1)).unwrap();
        let snapshot = store.snapshot();
        store.insert(&record(2)).unwrap();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot.get(record(1).key()), Some(record(1)));
        assert!(snapshot.get(record(2).key()).is_none());
        assert_eq!(store.snapshot().len(), 2);
    }
}
