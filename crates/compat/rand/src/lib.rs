//! Offline compat shim for `rand` (0.8 API subset).
//!
//! The build environment has no crates.io access.  This shim implements the
//! slice of the rand 0.8 API the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_bool`, `Rng::gen_range` over integer ranges — on top of a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//!
//! The generator is high quality for simulation purposes, but it is **not**
//! the ChaCha12 generator the real `StdRng` uses: streams produced under this
//! shim differ from streams produced by real rand with the same seed.
//! Everything in this workspace treats seeds as opaque reproducibility
//! handles, so only bit-for-bit stability *within* a build matters, and that
//! is guaranteed (no global state, no entropy source).

#![forbid(unsafe_code)]

pub mod rngs {
    //! Named generators (`StdRng`).

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::StdRng;

/// Seedable-generator constructor trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors (and
        // used by rand's own seed_from_u64).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

/// Random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits, uniform in [0, 1).
        let sample = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        sample < p
    }

    /// Fills a byte buffer with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Samples uniformly from an integer range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference code).
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Converts to the sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $ty
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges usable with [`Rng::gen_range`] (subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

fn sample_below<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let draw = rng.next_u64();
        if draw < zone {
            return draw % span;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = (self.start.to_u64(), self.end.to_u64());
        assert!(low < high, "cannot sample from an empty range");
        T::from_u64(low + sample_below(rng, high - low))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = (self.start().to_u64(), self.end().to_u64());
        assert!(low <= high, "cannot sample from an empty range");
        let span = high - low;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(low + sample_below(rng, span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(0..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let fraction = hits as f64 / 100_000.0;
        assert!((0.23..0.27).contains(&fraction), "fraction = {fraction}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
