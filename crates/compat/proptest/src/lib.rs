//! Offline compat shim for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the `proptest!` macro, `prop_assert*` macros, integer-range
//! strategies, `collection::vec` and `array::uniform16`.  Instead of
//! proptest's adaptive case generation and shrinking, each property runs a
//! fixed number of deterministic pseudo-random cases (seeded per test from a
//! constant), so failures are reproducible — but they are reported without
//! input shrinking.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

// Re-exported for the `proptest!` macro, so consumer crates do not need
// their own `rand` dependency.
#[doc(hidden)]
pub use rand;

/// Number of cases each property is checked against.
pub const CASES: u32 = 64;

/// A source of test values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits scaled into [start, end).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
        )
    }
}

impl Strategy for std::ops::RangeFrom<u8> {
    type Value = u8;
    fn sample(&self, rng: &mut StdRng) -> u8 {
        rng.gen_range(self.start..=u8::MAX)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Builds a `Vec` strategy (proptest's `collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.start..self.len.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `[T; 16]` arrays (proptest's `array::uniform16`).
    #[derive(Debug, Clone)]
    pub struct Uniform16<S>(S);

    /// Builds a 16-element array strategy.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S>
    where
        S::Value: Default + Copy,
    {
        type Value = [S::Value; 16];
        fn sample(&self, rng: &mut StdRng) -> [S::Value; 16] {
            let mut out = [S::Value::default(); 16];
            for slot in &mut out {
                *slot = self.0.sample(rng);
            }
            out
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

/// Discards the current case when the assumption does not hold.  Proptest
/// redraws a replacement input; this shim simply moves on to the next of its
/// [`CASES`] fixed cases, so over-constrained assumptions thin the sample
/// rather than erroring out.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against [`CASES`] deterministic
/// pseudo-random inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                use $crate::rand::SeedableRng as _;
                // Deterministic per-test seed: the same inputs are replayed
                // on every run, keeping failures reproducible.
                let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
                for _case in 0..$crate::CASES {
                    $(let $arg = ($strategy).sample(&mut rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..) {
            prop_assert!((3..17).contains(&x));
            let _ = y; // full-domain draw; nothing to bound-check
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(0u64..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn array_strategy_fills_all_slots(a in crate::array::uniform16(1u8..)) {
            prop_assert_eq!(a.len(), 16);
            prop_assert!(a.iter().all(|&b| b >= 1));
            prop_assert_ne!(&a[..], &[0u8; 16][..]);
        }
    }
}
