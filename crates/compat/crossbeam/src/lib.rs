//! Offline compat shim for `crossbeam`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! two crossbeam facilities the workspace uses with the same API shape:
//!
//! * [`channel`] — an unbounded MPMC channel (cloneable senders *and*
//!   receivers, disconnect on last-sender drop), built on a mutex-protected
//!   queue and a condvar,
//! * [`deque`] — `Injector`/`Worker`/`Stealer` work-stealing queues, built on
//!   mutex-protected `VecDeque`s.
//!
//! Functionally equivalent to the real crates for this workspace's workloads
//! (task queues of coarse-grained simulation jobs, where per-operation
//! locking cost is noise); swap back to the real crossbeam by editing only
//! the workspace manifest.

#![forbid(unsafe_code)]

pub mod channel {
    //! Unbounded MPMC channel (subset of `crossbeam-channel`).

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message.  Infallible in this shim (receiver-side
        /// disconnect detection is not needed by the workspace); the
        /// signature matches crossbeam's.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

pub mod deque {
    //! Work-stealing deques (subset of `crossbeam-deque`).
    //!
    //! `Worker` owns a deque popped from one end; `Stealer` handles steal
    //! from the opposite end; `Injector` is a shared FIFO for task injection.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Transient contention; retry.  (Never produced by this lock-based
        /// shim, but matched by callers written against the real API.)
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts to `Option`, mapping both `Empty` and `Retry` to `None`.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    /// A shared FIFO injection queue.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Steals a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    /// The owner side of a work-stealing deque (LIFO pop end).
    #[derive(Debug)]
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    /// The thief side of a work-stealing deque (FIFO steal end).
    #[derive(Debug)]
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops newest-first (LIFO), the
        /// locality-friendly default for work stealing.
        pub fn new_lifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Pops the most recently pushed task.
        pub fn pop(&self) -> Option<T> {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the owner's deque.
        pub fn steal(&self) -> Steal<T> {
            match self
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn channel_delivers_in_order_and_disconnects() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_is_mpmc() {
        let (tx, rx) = channel::unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count())
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn worker_pops_lifo_and_stealer_steals_fifo() {
        let worker: Worker<i32> = Worker::new_lifo();
        let stealer = worker.stealer();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(worker.pop(), Some(3));
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let injector = Injector::new();
        injector.push("a");
        injector.push("b");
        assert_eq!(injector.steal().success(), Some("a"));
        assert_eq!(injector.steal().success(), Some("b"));
        assert!(injector.is_empty());
    }
}
