//! Offline compat shim for `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `serde`/`serde_derive` cannot be fetched.  The sibling `serde` shim
//! declares `Serialize`/`Deserialize` as blanket-implemented marker traits,
//! which means the derive macros have nothing to generate: they accept the
//! item (including `#[serde(...)]` field/variant attributes) and emit no
//! code.  Swapping the workspace back to the real serde is a manifest-only
//! change; no source file depends on the shim's behaviour.

use proc_macro::TokenStream;

/// Inert stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
