//! Offline compat shim for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `Bencher::iter`, benchmark groups, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.  Results
//! are printed as `name ... <mean> ns/iter (N iterations)`; there is no
//! outlier analysis, no plotting and no baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    report: Option<(f64, u64)>,
}

impl Bencher {
    /// Runs `routine` repeatedly, measuring mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` samples or until the time budget runs
        // out, whichever comes first.
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        while iterations < self.sample_size as u64 && total < self.measurement_time {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iterations += 1;
        }
        let mean_ns = total.as_nanos() as f64 / iterations.max(1) as f64;
        self.report = Some((mean_ns, iterations));
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time budget.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((mean_ns, iterations)) => {
                println!("{name:<48} {mean_ns:>14.1} ns/iter ({iterations} iterations)");
            }
            None => println!("{name:<48} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (criterion API shape).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point (criterion API shape).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u32;
        fast_config().bench_function("shim_smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = fast_config();
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }
}
