//! Offline compat shim for `serde`.
//!
//! This build environment cannot reach crates.io, so the real serde cannot be
//! used.  The workspace's types only use serde in derive position (no generic
//! `T: Serialize` bounds and no direct serializer calls), so the shim keeps
//! the exact import surface (`use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]`) compiling by providing:
//!
//! * marker traits `Serialize` / `Deserialize` with blanket implementations,
//! * inert derive macros re-exported from the `serde_derive` shim.
//!
//! Actual JSON serialization for the campaign artifact store lives in the
//! `serde_json` compat shim, which is a real (if small) JSON library; the
//! `campaign` crate defines its own `ToJson`/`FromJson` conversions on top of
//! it.  Replacing these shims with the real crates is a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.  The real trait is lifetime-parameterised; no code in this
/// workspace names the lifetime, so the shim can omit it.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
