//! Offline compat shim for `parking_lot`.
//!
//! Provides the `Mutex` API subset this workspace uses (poison-free `lock()`
//! and `into_inner()`) on top of `std::sync::Mutex`.  Lock poisoning is
//! swallowed, matching parking_lot semantics: a panicking critical section
//! leaves the data accessible to other threads.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A poison-free mutex with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until it is available.  Never fails:
    /// poisoning from a panicked holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
