//! Offline compat shim for `serde_json`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of `serde_json` the workspace actually needs as a small,
//! self-contained JSON library: the [`Value`] tree, a writer (compact and
//! pretty) and a recursive-descent parser.  Object members are kept in a
//! `BTreeMap`, so serialization is canonical: the same `Value` always renders
//! to the same byte string, which the campaign engine relies on for stable
//! scenario hashes.
//!
//! Unlike the `serde` shim, nothing here is stubbed — these functions parse
//! and print real JSON and are covered by unit tests.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: a map with deterministic (sorted) iteration order.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: either an integer (kept exact) or a float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    // Round-trippable float formatting; integral floats keep
                    // a ".0" so they re-parse as floats.
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; mirror serde_json by emitting null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with canonical (sorted) member order.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::U64(u64::from(v)))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U64(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::U64(v as u64))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::Number(Number::U64(v as u64))
        } else {
            Value::Number(Number::I64(v))
        }
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F64(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for [`Value`]; the `Result` mirrors the real serde_json API.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Serializes a value to a pretty-printed (2-space-indented) JSON string.
///
/// # Errors
///
/// Never fails for [`Value`]; the `Result` mirrors the real serde_json API.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, Some(2), 0);
    Ok(out)
}

/// A parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem encountered.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{keyword}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by a low surrogate escape; anything
                            // else is malformed (as in real serde_json).
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(
                                            self.error("expected a low surrogate in \\u escape")
                                        );
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "42", "-7", "\"hi\""] {
            let value = from_str(text).unwrap();
            assert_eq!(value.to_string(), text);
        }
    }

    #[test]
    fn roundtrips_nested_structures() {
        let text = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#;
        let value = from_str(text).unwrap();
        assert_eq!(value.to_string(), text);
        let reparsed = from_str(&to_string_pretty(&value).unwrap()).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn object_keys_are_canonically_ordered() {
        let value = from_str(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(value.to_string(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn preserves_large_u64_integers() {
        let value = from_str("18446744073709551615").unwrap();
        assert_eq!(value.as_u64(), Some(u64::MAX));
        assert_eq!(value.to_string(), "18446744073709551615");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = from_str(r#""aA\n\t\"\\ é""#).unwrap();
        assert_eq!(value.as_str(), Some("aA\n\t\"\\ é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["{", "[1,", "\"open", "tru", "{\"a\" 1}", "1 2"] {
            assert!(from_str(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode_and_malformed_ones_are_rejected() {
        let value = from_str(r#""😀""#).unwrap();
        assert_eq!(value.as_str(), Some("\u{1F600}"));
        for text in [
            r#""\ud800\u0041""#, // high surrogate + non-low-surrogate escape
            r#""\ud800x""#,      // high surrogate with no second escape
            r#""\udc00""#,       // lone low surrogate
        ] {
            assert!(from_str(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn accessors_work() {
        let value = from_str(r#"{"n":3.5,"s":"x","b":true,"arr":[1]}"#).unwrap();
        assert_eq!(value.get("n").and_then(Value::as_f64), Some(3.5));
        assert_eq!(value.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(value.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            value
                .get("arr")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        assert!(value.get("missing").is_none());
    }
}
