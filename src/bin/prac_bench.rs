//! The unified `prac-bench` CLI: `prac-bench list`, `prac-bench run <name>`,
//! `prac-bench run --all`.  See `campaign::cli` for the implementation.

fn main() {
    std::process::exit(campaign::cli::main_from_env());
}
