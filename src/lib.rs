//! # prac-timing
//!
//! Reproduction of *"When Mitigations Backfire: Timing Channel Attacks and
//! Defense for PRAC-Based RowHammer Mitigations"* (ISCA 2025): the
//! **PRACLeak** covert- and side-channel attacks on PRAC's Alert Back-Off
//! protocol, and the **TPRAC** defense that closes those timing channels with
//! activity-independent Timing-Based RFMs.
//!
//! This crate is the umbrella: it re-exports the workspace's component crates
//! so applications can depend on a single crate, and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! ## Workspace layout
//!
//! | Component | Crate | What it provides |
//! |---|---|---|
//! | PRAC / TPRAC core | [`prac_core`] | PRAC parameters, the pluggable `MitigationEngine` API, mitigation queues, TB-Window security analysis, energy & storage models |
//! | DRAM device | [`dram_sim`] | Cycle-accurate DDR5 model with per-row activation counters and Alert Back-Off |
//! | Memory controller | [`memctrl`] | Channel-aware address mapping, FR-FCFS scheduling, refresh, the ABO responder driving the pluggable mitigation engine |
//! | CPU | [`cpu_sim`] | Trace-driven ROB-limited cores with an L1/L2/LLC hierarchy |
//! | Workloads | [`workloads`] | Synthetic workload suite bucketed by memory intensity, seedable end-to-end, plus the pluggable `AttackPattern` adversary API and its registry |
//! | Attacks | [`pracleak`] | PRACLeak covert channels, the AES T-table side channel, and the attack-vs-mitigation adversary driver |
//! | Full system | [`system_sim`] | The simulation harness: multi-channel `MemorySubsystem`, twin tick/event engines, the work-stealing `parallel_map` |
//! | Campaigns | [`campaign`] | Declarative scenario sweeps, result cache, artifacts and the `prac-bench` CLI |
//! | Bench wrappers | `bench-harness` | The legacy `fig*`/`table*` binaries, now thin wrappers over the campaign registry |
//!
//! (External dependencies resolve to offline shims under `crates/compat/`;
//! see that directory's README.)
//!
//! ## Reproducing the paper
//!
//! Every figure and table is a registered campaign; the `prac-bench` binary
//! lists and runs them with parallel execution, an incremental result cache
//! and JSON/CSV artifacts under `target/campaigns/`:
//!
//! ```text
//! cargo run --release --bin prac-bench -- list
//! cargo run --release --bin prac-bench -- mitigations
//! cargo run --release --bin prac-bench -- attacks
//! cargo run --release --bin prac-bench -- run fig10 --quick
//! cargo run --release --bin prac-bench -- run attacks --quick
//! cargo run --release --bin prac-bench -- run --all --full
//! ```
//!
//! A second `run` of an unchanged campaign is served from the cache; any
//! change to a scenario (threshold, seed, budget, workload) re-runs exactly
//! the cells it touches.
//!
//! Full-system cells execute under one of two interchangeable engines
//! (`--engine tick` or `--engine event`; the event-driven engine is the
//! default).  They produce bit-identical results — enforced by the
//! differential suite in `tests/engine_equivalence.rs` — so the choice only
//! affects wall-clock time, and cached results stay valid across engines.
//!
//! ## Quickstart
//!
//! ```
//! use prac_timing::prelude::*;
//!
//! // Size TPRAC's TB-Window for the paper's default RowHammer threshold and
//! // confirm it closes the timing channel with modest bandwidth cost.
//! let timing = DramTimingSummary::ddr5_8000b();
//! let analysis = SecurityAnalysis::with_back_off_threshold(
//!     1024,
//!     &timing,
//!     CounterResetPolicy::ResetEveryTrefw,
//! );
//! let window = analysis.solve_tb_window().expect("safe window exists");
//! assert!(window.tmax < 1024);
//! assert!(window.bandwidth_loss < 0.10);
//! ```
//!
//! ## Hammering a PRAC device and applying the defense
//!
//! The condensed form of `examples/quickstart.rs`: build a PRAC-enabled
//! DDR5 memory system, drive a registered RowHammer pattern against it, and
//! watch TPRAC keep the peak per-row activation count below the threshold
//! while the undefended device is breached.
//!
//! ```
//! use prac_timing::prelude::*;
//! use prac_timing::pracleak::adversary::run_adversary;
//! use prac_timing::pracleak::AttackSetup;
//!
//! let nbo = 512;
//!
//! // Undefended (mitigation disabled outright): the double-sided hammer
//! // pushes some row's PRAC counter past the threshold.
//! let undefended = AttackSetup::new(nbo).with_policy(MitigationPolicy::Disabled);
//! let breached = run_adversary(&AttackKind::DoubleSided, &undefended, 1_400, 10_000_000, 0);
//! assert!(breached.breached(nbo));
//!
//! // TPRAC: solve the largest safe TB-Window for the same threshold and
//! // hammer again — the peak stays below NBO and the attacker pays a
//! // slowdown for every Timing-Based RFM.
//! let timing = DramTimingSummary::ddr5_8000b();
//! let tprac = TpracConfig::solve_for_threshold(
//!     nbo,
//!     &timing,
//!     CounterResetPolicy::ResetEveryTrefw,
//! )
//! .expect("safe window exists");
//! let defended = AttackSetup::new(nbo).with_policy(MitigationPolicy::Tprac(tprac));
//! let held = run_adversary(&AttackKind::DoubleSided, &defended, 1_400, 10_000_000, 0);
//! assert!(!held.breached(nbo));
//! assert!(held.rfms_triggered > 0);
//! assert!(held.elapsed_ticks > breached.elapsed_ticks);
//! ```
//!
//! ## The covert channel
//!
//! The condensed form of `examples/covert_channel.rs`: a trojan and a spy
//! with no architectural channel transmit bits through PRAC's Alert
//! Back-Off timing channel (Section 3.2 / Table 2 of the paper).  The
//! activity-based variant signals one bit per window through the presence
//! or absence of an ABO-RFM latency spike; the activation-count variant
//! encodes `log2(NBO)` bits in the shared row's activation counter.
//!
//! ```
//! use prac_timing::prelude::*;
//! use prac_timing::pracleak::covert::run_covert_channel;
//!
//! let result = run_covert_channel(CovertChannelKind::ActivityBased, 256, 4, 0xC0FFEE);
//! assert_eq!(result.bits_transmitted, 4);
//! assert_eq!(result.bit_errors, 0, "the quick configuration is noise-free");
//! assert!(result.bitrate_kbps > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use campaign;
pub use cpu_sim;
pub use dram_sim;
pub use memctrl;
pub use prac_core;
pub use pracleak;
pub use system_sim;
pub use workloads;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use campaign::{Campaign, CampaignRunner, Profile, Scenario, ScenarioSpec};
    pub use cpu_sim::{CpuConfig, Trace, TraceOp};
    pub use dram_sim::{DramDevice, DramDeviceConfig, DramOrganization, DramTimingParams};
    pub use memctrl::{
        ChannelInterleave, ControllerConfig, MemoryController, MemoryRequest, PagePolicy,
    };
    pub use prac_core::config::{MitigationPolicy, PracConfig, PracLevel};
    pub use prac_core::mitigation::{
        BankActivationView, MitigationDecision, MitigationEngine, ProactiveRfmKind,
    };
    pub use prac_core::queue::{MitigationQueue, QueueKind, SingleEntryQueue};
    pub use prac_core::security::{CounterResetPolicy, SecurityAnalysis, TbWindowSolution};
    pub use prac_core::timing::DramTimingSummary;
    pub use prac_core::tprac::{TpracConfig, TrefRate};
    pub use pracleak::{
        Aes128TTable, AttackSetup, CovertChannelKind, SideChannelExperiment, SpikeDetector,
    };
    pub use system_sim::{
        mitigation_registry, ChannelStats, EngineKind, EventEngine, ExperimentConfig,
        MemorySubsystem, MitigationDescriptor, MitigationSetup, SimulationEngine, SystemResult,
        TickEngine,
    };
    pub use workloads::{
        attack_registry, AccessPattern, AttackAccess, AttackDescriptor, AttackKind, AttackPattern,
        MemoryIntensity, SyntheticWorkload,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_core_types() {
        use crate::prelude::*;
        let cfg = PracConfig::paper_default();
        assert_eq!(cfg.rowhammer_threshold, 1024);
        let timing = DramTimingSummary::ddr5_8000b();
        assert_eq!(timing.activations_per_trefi(), 75);
    }
}
