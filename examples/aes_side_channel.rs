//! PRACLeak side-channel attack on an AES T-table implementation
//! (Section 3.3 / Figures 4, 5 and 9 of the paper).
//!
//! The victim encrypts attacker-chosen plaintexts; the attacker, co-located
//! on the same DRAM rows as the T-tables, recovers the top nibble of a secret
//! key byte by observing which DRAM row triggers the first Alert Back-Off.
//! The example then repeats the attack with the TPRAC defense enabled and
//! shows that the leak disappears.
//!
//! Run with `cargo run --release --example aes_side_channel`.

use prac_core::security::CounterResetPolicy;
use prac_timing::prelude::*;

fn main() {
    // The paper's configuration: NBO = 256, 200 encryptions per key byte.
    let attack = SideChannelExperiment::paper_attack();

    println!(
        "PRACLeak AES T-table side channel (NBO = {}, {} encryptions)",
        attack.nbo, attack.encryptions
    );
    println!();
    println!("--- Without defense (ABO-only PRAC) ---");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>16}",
        "k0", "true nibble", "leaked row", "correct?", "victim ACTs"
    );
    let mut recovered = 0;
    let sample_keys = [0x00u8, 0x23, 0x47, 0x6B, 0x8F, 0xB3, 0xD7, 0xFB];
    for &k0 in &sample_keys {
        let outcome = attack.run_for_key_byte(k0, 0);
        let hot = outcome.hottest_victim_row().unwrap_or(0);
        if outcome.nibble_recovered() {
            recovered += 1;
        }
        println!(
            "{:>6} {:>12} {:>12} {:>10} {:>16}",
            format!("{k0:#04x}"),
            format!("{:#x}", outcome.true_nibble),
            outcome
                .leaked_row
                .map_or("-".to_string(), |r| format!("{r:#x}")),
            if outcome.nibble_recovered() {
                "yes"
            } else {
                "no"
            },
            outcome.victim_activations[hot]
        );
    }
    println!("recovered {recovered}/{} key nibbles", sample_keys.len());
    println!();

    // Same attack against TPRAC.
    let timing = DramTimingSummary::ddr5_8000b();
    let tprac =
        TpracConfig::solve_for_threshold(attack.nbo, &timing, CounterResetPolicy::ResetEveryTrefw)
            .expect("TB-Window solvable for NBO=256");
    let defended = attack.clone().with_policy(MitigationPolicy::Tprac(tprac));

    println!("--- With the TPRAC defense ---");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "k0", "true nibble", "leaked row", "correct?", "ABO-RFMs", "TB-RFMs"
    );
    let mut recovered_defended = 0;
    for &k0 in &sample_keys {
        let outcome = defended.run_for_key_byte(k0, 0);
        if outcome.nibble_recovered() {
            recovered_defended += 1;
        }
        println!(
            "{:>6} {:>12} {:>12} {:>10} {:>10} {:>10}",
            format!("{k0:#04x}"),
            format!("{:#x}", outcome.true_nibble),
            outcome
                .leaked_row
                .map_or("-".to_string(), |r| format!("{r:#x}")),
            if outcome.nibble_recovered() {
                "yes"
            } else {
                "no"
            },
            outcome.abo_rfms,
            outcome.tb_rfms
        );
    }
    println!(
        "recovered {recovered_defended}/{} key nibbles under TPRAC (expected: chance level, no ABO-RFMs)",
        sample_keys.len()
    );
}
