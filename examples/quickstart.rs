//! Quickstart: build a PRAC-enabled DDR5 memory system, watch the Alert
//! Back-Off protocol fire under a hammering pattern, then size and apply the
//! TPRAC defense and confirm the ABO events disappear.
//!
//! Run with `cargo run --release --example quickstart`.  The condensed,
//! assertion-checked form of this walkthrough lives as a runnable rustdoc
//! example on the umbrella crate ("Hammering a PRAC device and applying the
//! defense" in `src/lib.rs`), so `cargo test --doc` keeps it working.

use prac_timing::prelude::*;
use pracleak::agents::{MultiAgentRunner, SerializedAccessAgent};

fn hammer_and_report(label: &str, setup: &AttackSetup) {
    let controller = setup.build_controller();
    // A victim hammering one row plus an observer timing accesses in another
    // bank — the minimal setup that exposes the timing channel.
    let victim_row = setup.row_address(&controller, 0, 7, 0);
    let observer_rows: Vec<u64> = (0..32)
        .map(|r| setup.row_address(&controller, 1, 100 + r, 0))
        .collect();

    let mut victim = SerializedAccessAgent::new(vec![victim_row], 2_000);
    let mut observer = SerializedAccessAgent::new(observer_rows, 2_000);
    let mut runner = MultiAgentRunner::new(controller);
    runner.run(&mut [&mut victim, &mut observer], 10_000_000);

    let stats = runner.controller().stats();
    let detector = SpikeDetector::default();
    let latencies = observer.latencies_ns();
    let spikes = detector.count_spikes(&latencies);
    println!("--- {label} ---");
    println!(
        "  ABO events (Alert assertions)  : {}",
        runner.controller().device().stats().alerts_asserted
    );
    println!("  ABO-RFMs issued                : {}", stats.abo_rfms);
    println!("  TB-RFMs issued                 : {}", stats.tb_rfms);
    println!("  latency spikes seen by observer: {spikes}");
    println!(
        "  observer mean latency          : {:.1} ns",
        latencies.iter().sum::<f64>() / latencies.len().max(1) as f64
    );
    println!();
}

fn main() {
    let nbo = 512;

    // 1. Analytical step: how often must TPRAC issue a Timing-Based RFM so
    //    that even a worst-case (Feinting/Wave) attacker can never reach the
    //    Back-Off threshold?
    let timing = DramTimingSummary::ddr5_8000b();
    let analysis = SecurityAnalysis::with_back_off_threshold(
        nbo,
        &timing,
        CounterResetPolicy::ResetEveryTrefw,
    );
    let window = analysis.solve_tb_window().expect("a safe TB-Window exists");
    println!("TPRAC sizing for NBO = {nbo}:");
    println!(
        "  TB-Window             : {:.2} tREFI ({:.2} us)",
        window.tb_window_trefi,
        window.tb_window_ns / 1000.0
    );
    println!("  worst-case activations : {} (< {nbo})", window.tmax);
    println!(
        "  bandwidth loss bound   : {:.1} %",
        window.bandwidth_loss * 100.0
    );
    println!();

    // 2. Undefended system: hammering a row triggers Alert Back-Off and the
    //    resulting RFMs are visible as latency spikes to an unrelated thread.
    let undefended = AttackSetup::new(nbo);
    hammer_and_report("PRAC with ABO only (vulnerable)", &undefended);

    // 3. TPRAC-defended system: the same hammering pattern never reaches NBO
    //    because the most-activated row is proactively mitigated at every
    //    activity-independent TB-RFM.
    let tprac = TpracConfig::with_window_trefi(window.tb_window_trefi, &timing);
    let defended = AttackSetup::new(nbo).with_policy(MitigationPolicy::Tprac(tprac));
    hammer_and_report("TPRAC (defended)", &defended);
}
