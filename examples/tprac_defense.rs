//! TPRAC defense walkthrough: size the TB-Window analytically for a range of
//! RowHammer thresholds (the Figure 7 analysis), then verify empirically that
//! the resulting configuration eliminates every Alert Back-Off event under a
//! worst-case-style hammering pattern while an undefended system alerts
//! repeatedly.
//!
//! Run with `cargo run --release --example tprac_defense`.

use prac_core::security::{figure7_windows, CounterResetPolicy};
use prac_timing::prelude::*;
use pracleak::agents::{MultiAgentRunner, SerializedAccessAgent};

fn abo_events_under_hammering(setup: &AttackSetup, accesses_per_row: u64) -> (u64, u64) {
    let controller = setup.build_controller();
    // A Feinting-style pattern: spread activations over a pool of decoy rows,
    // then focus on the target row.
    let decoys: Vec<u64> = (0..16)
        .map(|r| setup.row_address(&controller, 0, 100 + r, 0))
        .collect();
    let target = setup.row_address(&controller, 0, 7, 0);
    let mut decoy_agent = SerializedAccessAgent::new(decoys, accesses_per_row * 16);
    let mut target_agent = SerializedAccessAgent::new(vec![target], accesses_per_row * 4);
    let mut runner = MultiAgentRunner::new(controller);
    runner.run(&mut [&mut decoy_agent, &mut target_agent], 80_000_000);
    (
        runner.controller().device().stats().alerts_asserted,
        runner.controller().stats().tb_rfms,
    )
}

fn main() {
    let timing = DramTimingSummary::ddr5_8000b();

    // Part 1: the Figure 7 analysis — worst-case activations to a single row
    // (TMAX) as the TB-Window grows, with and without counter reset.
    println!("Worst-case activations to a target row (TMAX) vs TB-Window  [Figure 7]");
    println!(
        "{:>12} {:>22} {:>24}",
        "TB-Window", "with counter reset", "without counter reset"
    );
    for window in figure7_windows() {
        let with_reset = SecurityAnalysis::with_back_off_threshold(
            4096,
            &timing,
            CounterResetPolicy::ResetEveryTrefw,
        );
        let no_reset =
            SecurityAnalysis::with_back_off_threshold(4096, &timing, CounterResetPolicy::NoReset);
        println!(
            "{:>9.2} tREFI {:>18} {:>24}",
            window,
            with_reset.tmax(window),
            no_reset.tmax(window)
        );
    }
    println!();

    // Part 2: solve the TB-Window per RowHammer threshold.
    println!("Solved TB-Window per RowHammer threshold (counter reset every tREFW)");
    println!(
        "{:>8} {:>16} {:>12} {:>18}",
        "NRH", "TB-Window (tREFI)", "TMAX", "bandwidth loss"
    );
    for nrh in [512u32, 1024, 2048, 4096] {
        let analysis = SecurityAnalysis::with_back_off_threshold(
            nrh,
            &timing,
            CounterResetPolicy::ResetEveryTrefw,
        );
        match analysis.solve_tb_window() {
            Ok(sol) => println!(
                "{:>8} {:>16.2} {:>12} {:>17.1}%",
                nrh,
                sol.tb_window_trefi,
                sol.tmax,
                sol.bandwidth_loss * 100.0
            ),
            Err(e) => println!("{nrh:>8} {e}"),
        }
    }
    println!();

    // Part 3: empirical check at NBO = 256 — hammer hard and count Alerts.
    let nbo = 256;
    let undefended = AttackSetup::new(nbo);
    let (alerts, _) = abo_events_under_hammering(&undefended, u64::from(nbo));
    println!("Empirical check at NBO = {nbo} under a hammering pattern:");
    println!("  ABO-only PRAC : {alerts} Alert assertions (timing channel open)");

    let tprac = TpracConfig::solve_for_threshold(nbo, &timing, CounterResetPolicy::ResetEveryTrefw)
        .expect("solvable");
    let defended = AttackSetup::new(nbo).with_policy(MitigationPolicy::Tprac(tprac));
    let (alerts_tprac, tb_rfms) = abo_events_under_hammering(&defended, u64::from(nbo));
    println!("  TPRAC         : {alerts_tprac} Alert assertions, {tb_rfms} TB-RFMs issued (timing channel closed)");
}
