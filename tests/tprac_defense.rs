//! Integration tests for the TPRAC defense: the analytically-sized TB-Window
//! must eliminate every Alert Back-Off event under adversarial access
//! patterns, and the defended system must hide the AES key from the
//! side-channel attack while remaining functional.

use prac_core::security::CounterResetPolicy;
use prac_timing::prelude::*;
use pracleak::agents::{MultiAgentRunner, SerializedAccessAgent};

fn tprac_policy(nbo: u32) -> MitigationPolicy {
    let timing = DramTimingSummary::ddr5_8000b();
    let cfg = TpracConfig::solve_for_threshold(nbo, &timing, CounterResetPolicy::ResetEveryTrefw)
        .expect("TB-Window solvable");
    MitigationPolicy::Tprac(cfg)
}

#[test]
fn tprac_eliminates_abo_under_feinting_style_pattern() {
    let nbo = 256;
    let setup = AttackSetup::new(nbo).with_policy(tprac_policy(nbo));
    let controller = setup.build_controller();

    // Feinting-style pattern: uniformly activate a pool of decoys, then focus
    // every remaining activation on the target row.
    let decoys: Vec<u64> = (0..32)
        .map(|r| setup.row_address(&controller, 0, 500 + r, 0))
        .collect();
    let target = setup.row_address(&controller, 0, 7, 0);
    let mut decoy_agent = SerializedAccessAgent::new(decoys, 32 * 64);
    let mut runner = MultiAgentRunner::new(controller);
    runner.run(&mut [&mut decoy_agent], 40_000_000);
    let mut target_agent = SerializedAccessAgent::new(vec![target], u64::from(nbo) * 2);
    runner.run(&mut [&mut target_agent], 40_000_000);

    let device_stats = runner.controller().device().stats();
    let ctrl_stats = runner.controller().stats();
    assert_eq!(
        device_stats.alerts_asserted, 0,
        "no row may ever reach NBO under TPRAC"
    );
    assert_eq!(ctrl_stats.abo_rfms, 0);
    assert!(ctrl_stats.tb_rfms > 0, "TB-RFMs must be flowing");
    assert!(device_stats.rows_mitigated_by_rfm > 0);
}

#[test]
fn undefended_system_alerts_under_the_same_pattern() {
    let nbo = 256;
    let setup = AttackSetup::new(nbo); // ABO-only
    let controller = setup.build_controller();
    let target = setup.row_address(&controller, 0, 7, 0);
    let mut target_agent = SerializedAccessAgent::new(vec![target], u64::from(nbo) + 8);
    let mut runner = MultiAgentRunner::new(controller);
    runner.run(&mut [&mut target_agent], 40_000_000);
    assert!(runner.controller().device().stats().alerts_asserted >= 1);
    assert!(runner.controller().stats().abo_rfms >= 1);
}

#[test]
fn tprac_tb_rfm_times_are_independent_of_access_pattern() {
    // The same TPRAC configuration must issue RFMs at the same times whether
    // the memory is idle or hammered — that independence is the defense.
    let nbo = 512;
    let policy = tprac_policy(nbo);

    let idle_times: Vec<u64> = {
        // Completely idle memory system: just tick the controller.
        let setup = AttackSetup::new(nbo).with_policy(policy.clone());
        let mut controller = setup.build_controller();
        let _ = controller.run_until(0, 2_000_000);
        controller.rfm_log().iter().map(|(t, _)| *t).collect()
    };

    let hammered_times: Vec<u64> = {
        let setup = AttackSetup::new(nbo).with_policy(policy);
        let controller = setup.build_controller();
        let target = setup.row_address(&controller, 0, 9, 0);
        let mut hammer = SerializedAccessAgent::new(vec![target], u64::MAX);
        let mut runner = MultiAgentRunner::new(controller);
        runner.run(&mut [&mut hammer], 2_000_000);
        runner
            .controller()
            .rfm_log()
            .iter()
            .map(|(t, _)| *t)
            .collect()
    };

    assert!(!idle_times.is_empty());
    assert_eq!(idle_times.len(), hammered_times.len());
    for (idle, hammered) in idle_times.iter().zip(&hammered_times) {
        // The hammered system may defer an individual RFM by at most the
        // in-flight command it had to wait out (sub-microsecond); the
        // schedule itself (deadline sequence) is identical.
        assert!(
            idle.abs_diff(*hammered) < 2_000,
            "TB-RFM times must not depend on activity: idle={idle}, hammered={hammered}"
        );
    }
}

#[test]
fn defended_side_channel_observes_no_key_correlation() {
    let nbo = 128;
    let attack = SideChannelExperiment {
        nbo,
        encryptions: 100,
        policy: tprac_policy(nbo),
        seed: 77,
    };
    let mut recovered = 0;
    let keys = [0x20u8, 0x80, 0xD0];
    for &k0 in &keys {
        let outcome = attack.run_for_key_byte(k0, 0);
        assert_eq!(outcome.abo_rfms, 0);
        if outcome.nibble_recovered() {
            recovered += 1;
        }
    }
    assert!(
        recovered < keys.len(),
        "TPRAC must break the key correlation"
    );
}

#[test]
fn solved_windows_reproduce_headline_operating_points() {
    // NRH = 1024 -> ~1.6 tREFI (reset); NRH = 512 -> roughly half of that.
    let timing = DramTimingSummary::ddr5_8000b();
    let w1024 = SecurityAnalysis::with_back_off_threshold(
        1024,
        &timing,
        CounterResetPolicy::ResetEveryTrefw,
    )
    .solve_tb_window()
    .unwrap();
    let w512 = SecurityAnalysis::with_back_off_threshold(
        512,
        &timing,
        CounterResetPolicy::ResetEveryTrefw,
    )
    .solve_tb_window()
    .unwrap();
    assert!((1.0..2.5).contains(&w1024.tb_window_trefi), "{w1024:?}");
    assert!(w512.tb_window_trefi < w1024.tb_window_trefi);
    let ratio = w1024.tb_window_trefi / w512.tb_window_trefi;
    assert!(
        (1.5..2.6).contains(&ratio),
        "window should roughly halve: {ratio}"
    );
}
