//! Integration tests for the performance study: the relative ordering of the
//! mitigation configurations must match the paper's Figure 10/13 trends.
//!
//! These tests run the full CPU + controller + DRAM stack, so they use small
//! instruction budgets; the trends they check are coarse by design.

use prac_core::tprac::TrefRate;
use prac_timing::prelude::*;
use system_sim::{run_workload, run_workload_normalized};
use workloads::generator::{AccessPattern, SyntheticWorkload};

const INSTR: u64 = 25_000;

fn memory_hungry() -> SyntheticWorkload {
    SyntheticWorkload::new("h-int", 60, AccessPattern::RandomLarge).with_footprint(64 << 20)
}

fn cache_friendly() -> SyntheticWorkload {
    SyntheticWorkload::new("l-int", 1, AccessPattern::CacheResident)
}

fn tprac_setup(counter_reset: bool) -> MitigationSetup {
    MitigationSetup::Tprac {
        tref_rate: TrefRate::None,
        counter_reset,
    }
}

#[test]
fn tprac_is_slower_than_insecure_baselines_but_not_catastrophic() {
    let workload = memory_hungry();
    let abo = ExperimentConfig::new(MitigationSetup::AboOnly, INSTR).with_cores(2);
    let acb = ExperimentConfig::new(MitigationSetup::AboPlusAcbRfm, INSTR).with_cores(2);
    let tprac = ExperimentConfig::new(tprac_setup(true), INSTR).with_cores(2);

    let (abo_perf, _, _) = run_workload_normalized(&abo, &workload, 11).unwrap();
    let (acb_perf, _, _) = run_workload_normalized(&acb, &workload, 11).unwrap();
    let (tprac_perf, tprac_run, _) = run_workload_normalized(&tprac, &workload, 11).unwrap();

    // Paper ordering at NRH=1024: ABO-Only ≈ 1.0 ≥ ABO+ACB ≥ TPRAC ≥ ~0.9.
    assert!(
        abo_perf > 0.97,
        "ABO-Only should be near baseline: {abo_perf}"
    );
    assert!(
        acb_perf > 0.95,
        "ABO+ACB should be near baseline: {acb_perf}"
    );
    assert!(
        tprac_perf <= abo_perf + 0.01,
        "TPRAC ({tprac_perf}) must not beat ABO-Only ({abo_perf})"
    );
    assert!(
        tprac_perf > 0.85,
        "TPRAC slowdown must stay moderate: {tprac_perf}"
    );
    assert!(tprac_run.controller_stats.tb_rfms > 0);
}

#[test]
fn tprac_overhead_grows_as_the_rowhammer_threshold_drops() {
    let workload = memory_hungry();
    let perf_at = |nrh: u32| {
        let config = ExperimentConfig::new(tprac_setup(true), INSTR)
            .with_cores(2)
            .with_rowhammer_threshold(nrh);
        run_workload_normalized(&config, &workload, 13).unwrap().0
    };
    let high = perf_at(4096);
    let low = perf_at(256);
    assert!(
        low < high,
        "lower NRH must cost more performance (NRH=256: {low}, NRH=4096: {high})"
    );
}

#[test]
fn low_intensity_workloads_see_negligible_tprac_overhead() {
    let config = ExperimentConfig::new(tprac_setup(true), INSTR).with_cores(2);
    let (perf, _, _) = run_workload_normalized(&config, &cache_friendly(), 17).unwrap();
    assert!(
        perf > 0.97,
        "cache-resident workloads should be nearly unaffected: {perf}"
    );
}

#[test]
fn targeted_refreshes_reduce_tb_rfm_count() {
    let workload = memory_hungry();
    let without_tref = ExperimentConfig::new(tprac_setup(true), INSTR).with_cores(2);
    let with_tref = ExperimentConfig::new(
        MitigationSetup::Tprac {
            tref_rate: TrefRate::EveryTrefi(1),
            counter_reset: true,
        },
        INSTR,
    )
    .with_cores(2);
    let plain = run_workload(&without_tref, &workload, 23).unwrap();
    let tref = run_workload(&with_tref, &workload, 23).unwrap();
    assert!(plain.controller_stats.tb_rfms > 0);
    assert!(
        tref.controller_stats.tb_rfms < plain.controller_stats.tb_rfms
            || tref.controller_stats.tb_rfms_skipped > 0,
        "TREF co-design must skip TB-RFMs: plain={:?} tref={:?}",
        plain.controller_stats,
        tref.controller_stats
    );
}

#[test]
fn energy_overhead_tracks_rfm_frequency() {
    let workload = memory_hungry();
    let banks = 128;
    let overhead_at = |nrh: u32| {
        let config = ExperimentConfig::new(tprac_setup(true), INSTR)
            .with_cores(2)
            .with_rowhammer_threshold(nrh);
        let (_, protected, baseline) = run_workload_normalized(&config, &workload, 29).unwrap();
        system_sim::energy_overhead_for(&baseline, &protected, banks)
    };
    let high_threshold = overhead_at(4096);
    let low_threshold = overhead_at(256);
    assert!(low_threshold.total > high_threshold.total);
    assert!(low_threshold.mitigation > 0.0);
}
