//! Golden snapshot of single-channel full-system results.
//!
//! The multi-channel memory-subsystem refactor promises that one-channel
//! runs stay **bit-identical** to the original single-controller wiring.
//! This test pins the complete observable outcome — elapsed ticks, per-core
//! progress, every controller and DRAM counter, and an order-sensitive hash
//! of the RFM issue log — for several mitigation setups and workloads
//! against a golden file generated *before* the refactor.  Any drift in a
//! single-channel result is a correctness regression, not noise.
//!
//! Regenerate (only with justification recorded in the commit message):
//!
//! ```text
//! UPDATE_SYSTEM_GOLDEN=1 cargo test --test single_channel_snapshot
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use prac_core::tprac::TrefRate;
use system_sim::{run_workload, ExperimentConfig, MitigationSetup, SystemResult};
use workloads::{quick_suite, MemoryIntensity, WorkloadSpec};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("single_channel_results.txt")
}

/// The mitigation setups the snapshot covers: the normalisation baseline,
/// a reactive engine, the paper's defense, and a proactive periodic engine.
fn snapshot_setups() -> Vec<MitigationSetup> {
    vec![
        MitigationSetup::BaselineNoAbo,
        MitigationSetup::AboOnly,
        MitigationSetup::Tprac {
            tref_rate: TrefRate::None,
            counter_reset: true,
        },
        MitigationSetup::Prfm { every_trefi: 2 },
    ]
}

/// One workload per intensity band, mirroring the engine-equivalence suite.
fn snapshot_workloads() -> Vec<WorkloadSpec> {
    let suite = quick_suite();
    [MemoryIntensity::High, MemoryIntensity::Low]
        .into_iter()
        .filter_map(|band| suite.iter().find(|w| w.intensity == band).cloned())
        .collect()
}

/// 64-bit FNV-1a over the RFM log, order sensitive: any change to the cycle
/// or kind of any issued RFM changes the digest.
fn rfm_log_digest(result: &SystemResult) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (tick, kind) in &result.rfm_log {
        mix(*tick);
        mix(*kind as u64);
    }
    hash
}

fn render_result(line: &mut String, result: &SystemResult) {
    let c = &result.controller_stats;
    let d = &result.dram_stats;
    write!(
        line,
        "elapsed={} completed={} cores=",
        result.elapsed_ticks, result.completed
    )
    .unwrap();
    for (i, core) in result.core_stats.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write!(line, "{}:{}", core.instructions, core.cycles).unwrap();
    }
    write!(
        line,
        " ctrl=[r{} w{} hit{} miss{} conf{} ref{} abo{} acb{} tb{} per{} para{} inj{} skip{} lat{} max{}]",
        c.reads_completed,
        c.writes_completed,
        c.row_hits,
        c.row_misses,
        c.row_conflicts,
        c.refreshes_issued,
        c.abo_rfms,
        c.acb_rfms,
        c.tb_rfms,
        c.periodic_rfms,
        c.para_rfms,
        c.injected_rfms,
        c.tb_rfms_skipped,
        c.total_latency_ticks,
        c.max_latency_ticks,
    )
    .unwrap();
    write!(
        line,
        " dram=[act{} pre{} rd{} wr{} ref{} rfm{} mit{} tref{} alert{} reset{}]",
        d.activations,
        d.precharges,
        d.reads,
        d.writes,
        d.refreshes,
        d.rfm_all_bank,
        d.rows_mitigated_by_rfm,
        d.rows_mitigated_by_tref,
        d.alerts_asserted,
        d.counter_resets,
    )
    .unwrap();
    write!(
        line,
        " rfm_log=[n{} fnv{:016x}]",
        result.rfm_log.len(),
        rfm_log_digest(result)
    )
    .unwrap();
}

fn render_snapshot() -> String {
    let mut out = String::new();
    out.push_str(
        "# Golden single-channel system results: <setup>/<workload> = <observables>\n\
         # Regenerate with UPDATE_SYSTEM_GOLDEN=1 cargo test --test single_channel_snapshot\n",
    );
    for setup in snapshot_setups() {
        for workload in snapshot_workloads() {
            let config = ExperimentConfig::new(setup.clone(), 8_000).with_cores(2);
            let result = run_workload(&config, &workload.workload, 0x5EED ^ 8_000)
                .expect("snapshot setups resolve at NRH 1024");
            let mut line = format!("{}/{} = ", setup.slug(), workload.workload.name);
            render_result(&mut line, &result);
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn single_channel_results_match_the_pre_refactor_golden() {
    let rendered = render_snapshot();
    let path = golden_path();
    if std::env::var_os("UPDATE_SYSTEM_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden file has a parent"))
            .expect("create golden directory");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "missing golden file {} ({error}); regenerate with \
             UPDATE_SYSTEM_GOLDEN=1 cargo test --test single_channel_snapshot",
            path.display()
        )
    });
    if golden != rendered {
        let mut diff = String::new();
        for (g, r) in golden.lines().zip(rendered.lines()) {
            if g != r {
                let _ = writeln!(diff, "  golden:  {g}\n  current: {r}");
            }
        }
        panic!(
            "single-channel results drifted from the pre-refactor golden:\n{diff}\n\
             One-channel runs must stay bit-identical across memory-subsystem \
             changes; regenerate with UPDATE_SYSTEM_GOLDEN=1 only with a \
             justified explanation in the commit message."
        );
    }
}
