//! Property suite for the pluggable attack patterns: every registered
//! pattern must emit only addresses that decode to valid [`DramAddress`]es
//! under **every** address mapping and channel count.
//!
//! Concretely, for each `attack_registry()` entry × mapping policy
//! (MOP / bank-striped / row-interleaved) × channels ∈ {1, 2, 4}:
//!
//! * every emitted coordinate is within the organisation's bounds,
//! * encoding the coordinate to a physical address and decoding it back is
//!   the identity (the pattern never produces an address the mapping cannot
//!   represent), and
//! * the physical address lies inside the subsystem's capacity.
//!
//! The proptest shim replays a fixed number of cases from a constant seed,
//! so this suite is reproducible bit-for-bit (see `crates/compat/proptest`).

use prac_timing::dram_sim::org::DramOrganization;
use prac_timing::memctrl::mapping::{ChannelInterleave, MappingKind};
use prac_timing::workloads::attack::attack_registry;
use proptest::prelude::*;

const T_REFI_TICKS: u64 = 15_600;

fn mapping_kinds() -> [MappingKind; 3] {
    [
        MappingKind::Mop,
        MappingKind::BankStriped,
        MappingKind::RowInterleaved,
    ]
}

proptest! {
    #[test]
    fn every_pattern_decodes_validly_across_mappings_and_channels(
        pattern_index in 0usize..6,
        mapping_index in 0usize..3,
        channel_exp in 0u32..3,
        interleave_index in 0u32..2,
        seed in 0u64..1 << 16,
    ) {
        let registry = attack_registry();
        prop_assert!(registry.len() >= 6);
        let descriptor = &registry[pattern_index % registry.len()];
        let channels = 1u32 << channel_exp; // 1, 2, 4
        let org = DramOrganization::ddr5_32gb_quad_rank().with_channels(channels);
        prop_assert!(org.is_valid());
        let interleave = if interleave_index == 1 {
            ChannelInterleave::Row
        } else {
            ChannelInterleave::CacheLine
        };
        let mapping = mapping_kinds()[mapping_index % 3].instantiate_with(org, interleave);
        let mut pattern = descriptor.kind.build(&org, T_REFI_TICKS, seed);

        // The declared hot rows are themselves valid, encodable coordinates.
        let hot = pattern.hot_rows();
        prop_assert!(!hot.is_empty(), "{}: empty hot-row set", descriptor.slug);
        for row in &hot {
            let physical = mapping.encode(row);
            prop_assert_eq!(mapping.decode(physical), *row, "{}: hot row", &descriptor.slug);
        }

        let mut now = 0u64;
        for _ in 0..512 {
            let access = pattern.next_access(now);
            now = now.max(access.not_before) + 1;
            let address = access.address;

            // In bounds for the organisation.
            prop_assert!(address.channel < org.channels, "{}: channel", &descriptor.slug);
            prop_assert!(address.rank < org.ranks, "{}: rank", &descriptor.slug);
            prop_assert!(address.bank_group < org.bank_groups, "{}: bank group", &descriptor.slug);
            prop_assert!(address.bank < org.banks_per_group, "{}: bank", &descriptor.slug);
            prop_assert!(address.row < org.rows_per_bank, "{}: row", &descriptor.slug);
            prop_assert!(address.column < org.columns_per_row, "{}: column", &descriptor.slug);

            // Encode → decode is the identity and stays inside the capacity.
            let physical = mapping.encode(&address);
            prop_assert!(
                physical < org.capacity_bytes(),
                "{}: physical {physical:#x} outside capacity",
                &descriptor.slug
            );
            prop_assert_eq!(
                mapping.decode(physical),
                address,
                "{}: encode/decode round trip",
                &descriptor.slug
            );
        }
    }
}
