//! Differential harness for the two simulation engines.
//!
//! The event-driven engine claims to visit only the ticks that matter; the
//! legacy tick engine visits all of them.  These tests race the two engines
//! over quick-suite workloads under every mitigation configuration and
//! require **bit-for-bit identical** `SystemResult`s — per-core IPC inputs
//! (instructions *and* cycles), slowdown/normalisation inputs, ABO/ACB/TB
//! RFM counts, the exact cycle of every issued RFM (via the RFM log), and
//! the energy-model inputs (activations, refreshes, mitigations).
//!
//! A broader sweep over the full quick suite is `#[ignore]`d here and run in
//! release mode by the dedicated CI job.

use system_sim::{
    mitigation_registry, run_workload, EngineKind, ExperimentConfig, MitigationSetup, SystemResult,
};
use system_sim::{EventEngine, SystemConfig, SystemSimulation, TickEngine};
use workloads::{quick_suite, MemoryIntensity, WorkloadSpec};

/// Every registered mitigation configuration.  Iterating the registry (not a
/// hand-written list) means an engine added to
/// `system_sim::mitigation_registry` — present or future — is automatically
/// raced tick-vs-event here; a registry entry can never ship without
/// differential coverage.
fn all_setups() -> Vec<MitigationSetup> {
    let setups: Vec<MitigationSetup> = mitigation_registry()
        .into_iter()
        .map(|descriptor| descriptor.setup)
        .collect();
    // Guard against the registry accidentally shrinking below the paper's
    // own sweep (baseline + 2 insecure + 3 TPRAC variants + PRFM + PARA).
    assert!(setups.len() >= 8, "registry lost entries: {setups:?}");
    setups
}

fn run_under(
    engine: EngineKind,
    setup: &MitigationSetup,
    workload: &WorkloadSpec,
    instructions: u64,
    channels: u32,
    seed: u64,
) -> SystemResult {
    let config = ExperimentConfig::new(setup.clone(), instructions)
        .with_cores(2)
        .with_channels(channels)
        .with_engine(engine);
    run_workload(&config, &workload.workload, seed).expect("registered setups resolve at NRH 1024")
}

/// Asserts both engines produce the same result, with field-by-field
/// messages before the final whole-struct comparison so a divergence names
/// the statistic that drifted.
fn assert_engines_agree(setup: &MitigationSetup, workload: &WorkloadSpec, instructions: u64) {
    assert_engines_agree_on_channels(setup, workload, instructions, 1);
}

/// [`assert_engines_agree`] on a multi-channel memory subsystem: the race
/// covers the per-channel fan-out, the min-across-channels wake-up
/// computation, and the per-channel statistics blocks (compared by the final
/// whole-struct equality).
fn assert_engines_agree_on_channels(
    setup: &MitigationSetup,
    workload: &WorkloadSpec,
    instructions: u64,
    channels: u32,
) {
    let seed = 0xD1FF ^ instructions;
    let ticked = run_under(
        EngineKind::Tick,
        setup,
        workload,
        instructions,
        channels,
        seed,
    );
    let evented = run_under(
        EngineKind::Event,
        setup,
        workload,
        instructions,
        channels,
        seed,
    );
    let context = format!(
        "setup {:?} workload {} channels {channels}",
        setup.label(),
        workload.workload.name
    );

    assert_eq!(
        ticked.elapsed_ticks, evented.elapsed_ticks,
        "elapsed ticks diverged: {context}"
    );
    assert_eq!(
        ticked.completed, evented.completed,
        "completion diverged: {context}"
    );
    for (core, (t, e)) in ticked
        .core_stats
        .iter()
        .zip(evented.core_stats.iter())
        .enumerate()
    {
        assert_eq!(
            (t.instructions, t.cycles),
            (e.instructions, e.cycles),
            "core {core} progress diverged: {context}"
        );
    }
    assert_eq!(
        ticked.controller_stats, evented.controller_stats,
        "controller stats diverged: {context}"
    );
    assert_eq!(
        ticked.dram_stats, evented.dram_stats,
        "DRAM stats diverged: {context}"
    );
    assert_eq!(
        ticked.channel_stats, evented.channel_stats,
        "per-channel stats diverged: {context}"
    );
    assert_eq!(
        ticked.rfm_log, evented.rfm_log,
        "RFM issue cycles diverged: {context}"
    );
    assert_eq!(ticked, evented, "results diverged: {context}");
    assert!(
        ticked.completed,
        "equivalence run hit the tick cap (budget too small to be meaningful): {context}"
    );
}

/// One workload per memory-intensity band, to keep the debug-mode runtime
/// inside the tier-1 budget while still covering the interesting regimes
/// (DRAM-saturated, mixed, and cache-resident).
fn representative_workloads() -> Vec<WorkloadSpec> {
    let suite = quick_suite();
    [
        MemoryIntensity::High,
        MemoryIntensity::Medium,
        MemoryIntensity::Low,
    ]
    .into_iter()
    .filter_map(|band| suite.iter().find(|w| w.intensity == band).cloned())
    .collect()
}

#[test]
fn engines_agree_across_all_mitigation_setups() {
    let workloads = representative_workloads();
    assert_eq!(workloads.len(), 3, "expected one workload per band");
    for setup in all_setups() {
        for workload in &workloads {
            assert_engines_agree(&setup, workload, 8_000);
        }
    }
}

/// Races the engines across multi-channel memory subsystems for every
/// registered mitigation: the event engine's min-across-channels wake-up and
/// the per-channel completion merge must stay cycle-exact as the channel
/// count grows.  The memory-bound workload keeps every channel busy.
#[test]
fn engines_agree_across_channel_counts() {
    let workloads = representative_workloads();
    let memory_bound = &workloads[0];
    assert_eq!(memory_bound.intensity, workloads::MemoryIntensity::High);
    for setup in all_setups() {
        for channels in [1u32, 2, 4] {
            assert_engines_agree_on_channels(&setup, memory_bound, 8_000, channels);
        }
    }
}

/// The adversarial co-runner knob: every registered attack pattern riding
/// one extra core next to a benign workload must stay cycle-exact across
/// the two engines — the attacker's flush+reload trace exercises demand
/// traffic, Alert assertion and mitigation wake-ups concurrently with
/// ordinary cache-filtered loads.
#[test]
fn engines_agree_with_an_adversarial_corunner() {
    let workloads = representative_workloads();
    let low_intensity = &workloads[workloads.len() - 1];
    for descriptor in workloads::attack_registry() {
        let run = |engine: EngineKind| {
            let config = ExperimentConfig::new(MitigationSetup::AboOnly, 6_000)
                .with_cores(1)
                .with_attack(Some(descriptor.kind))
                .with_engine(engine);
            run_workload(&config, &low_intensity.workload, 0xA77)
                .expect("ABO-only resolves at NRH 1024")
        };
        let ticked = run(EngineKind::Tick);
        let evented = run(EngineKind::Event);
        assert_eq!(
            ticked, evented,
            "attack {} diverged between engines",
            descriptor.slug
        );
        assert_eq!(ticked.core_stats.len(), 2, "benign core + attacker core");
    }
}

/// Adversarial traffic on a tiny device: flush-reload hammering across rows
/// of one bank drives the PRAC counters over a small Back-Off threshold, so
/// this differential run exercises the paths benign workloads never reach —
/// Alert assertion, the tABOACT-delayed ABO response, ABODelay suppression,
/// the per-tREFW counter reset (the test device's tREFW is ~200 k ticks),
/// and the obfuscation defense's per-tREFI injection decisions.
#[test]
fn engines_agree_under_adversarial_hammering() {
    use cpu_sim::config::CpuConfig;
    use cpu_sim::trace::{Trace, TraceOp};
    use dram_sim::device::DramDeviceConfig;
    use memctrl::controller::ControllerConfig;
    use prac_core::config::{MitigationPolicy, PracConfig};
    use prac_core::obfuscation::ObfuscationConfig;

    let hammer_trace = |base: u64| {
        // 8 KB stride lands each access in a different row of the same
        // small test device; the flush forces every load back to DRAM.
        let ops = (0..64u64)
            .flat_map(|i| {
                let addr = base + (i % 4) * 8192;
                [TraceOp::Load(addr), TraceOp::Flush(addr)]
            })
            .collect();
        Trace::new("hammer", ops)
    };
    let build = |obfuscated: bool| {
        let prac = PracConfig::builder()
            .rowhammer_threshold(24)
            .back_off_threshold(24)
            .policy(MitigationPolicy::AboOnly)
            .build();
        let mut cpu = CpuConfig::tiny_for_tests();
        cpu.cores = 2;
        let config = SystemConfig {
            cpu,
            device: DramDeviceConfig::tiny_for_tests(prac),
            controller: ControllerConfig {
                obfuscation: obfuscated
                    .then(|| ObfuscationConfig::new(0.5).expect("valid injection probability")),
                // The injection decision is made once per tREFI — the same
                // cadence as periodic refresh, which wins the command slot
                // and leaves the channel blocked for tRFC, so (as in the
                // attack benches) obfuscation is exercised with refresh off.
                // The refresh+Alert interaction is covered by the
                // `obfuscated == false` variant.
                refresh_enabled: !obfuscated,
                ..ControllerConfig::default()
            },
            instructions_per_core: 6_000,
            max_ticks: 50_000_000,
            engine: EngineKind::default(),
            sim_threads: 1,
        };
        let traces = vec![hammer_trace(0x100_0000), hammer_trace(0x200_0000)];
        SystemSimulation::new(config, traces)
    };

    for obfuscated in [false, true] {
        let ticked = build(obfuscated).run_with(&TickEngine);
        let evented = build(obfuscated).run_with(&EventEngine);
        assert_eq!(
            ticked, evented,
            "engines diverged under hammering (obfuscated: {obfuscated})"
        );
        assert!(ticked.completed, "hammering run hit the tick cap");
        assert!(
            ticked.dram_stats.alerts_asserted > 0,
            "the adversarial trace must actually trigger Alerts"
        );
        assert!(
            ticked.controller_stats.abo_rfms > 0,
            "Alerts must be answered with ABO-RFMs"
        );
        assert!(
            ticked.dram_stats.counter_resets > 0,
            "the run must span at least one tREFW counter reset"
        );
        if obfuscated {
            assert!(
                ticked.controller_stats.injected_rfms > 0,
                "the obfuscation defense must inject RFMs"
            );
        }
    }
}

/// A run that hits the tick cap mid-flight: the event engine's truncation
/// path (jump to `max_ticks`, bulk-credit the remaining stalled cycles,
/// report `completed == false`) must agree with the tick engine spinning
/// out the same budget — including the partial per-core progress and every
/// statistic accumulated up to the cap.
#[test]
fn engines_agree_when_hitting_the_tick_cap() {
    use cpu_sim::config::CpuConfig;
    use cpu_sim::trace::{Trace, TraceOp};
    use dram_sim::device::DramDeviceConfig;
    use memctrl::controller::ControllerConfig;
    use prac_core::config::PracConfig;

    let build = |max_ticks: u64| {
        let prac = PracConfig::builder().rowhammer_threshold(1024).build();
        let mut cpu = CpuConfig::tiny_for_tests();
        cpu.cores = 2;
        let memory_trace = |base: u64| {
            let ops = (0..4096u64)
                .flat_map(|i| [TraceOp::Load(base + i * 64), TraceOp::Compute(9)])
                .collect();
            Trace::new("mem", ops)
        };
        let config = SystemConfig {
            cpu,
            device: DramDeviceConfig::tiny_for_tests(prac),
            controller: ControllerConfig::default(),
            instructions_per_core: 1_000_000,
            max_ticks,
            engine: EngineKind::default(),
            sim_threads: 1,
        };
        let traces = vec![memory_trace(0x1_0000_0000), memory_trace(0x2_0000_0000)];
        SystemSimulation::new(config, traces)
    };

    // A cap far below what the instruction budget needs, plus a degenerate
    // zero-tick cap exercising the empty-run path.
    for max_ticks in [0, 40_000] {
        let ticked = build(max_ticks).run_with(&TickEngine);
        let evented = build(max_ticks).run_with(&EventEngine);
        assert_eq!(
            ticked, evented,
            "engines diverged at the tick cap (max_ticks: {max_ticks})"
        );
        assert!(!ticked.completed, "the cap must truncate the run");
        assert_eq!(ticked.elapsed_ticks, max_ticks);
    }
}

/// Runs a workload under the default (event) engine with an explicit
/// `--sim-threads` value.
fn run_with_threads(
    setup: &MitigationSetup,
    workload: &WorkloadSpec,
    instructions: u64,
    channels: u32,
    sim_threads: usize,
    seed: u64,
) -> SystemResult {
    let config = ExperimentConfig::new(setup.clone(), instructions)
        .with_cores(2)
        .with_channels(channels)
        .with_sim_threads(sim_threads);
    run_workload(&config, &workload.workload, seed).expect("registered setups resolve at NRH 1024")
}

/// The thread-count race: parallel channel stepping is an execution knob
/// like the engine itself, so every registered mitigation on a multi-channel
/// subsystem must produce **bit-for-bit identical** results across
/// `--sim-threads {1, 2, 4}` — same request ids, same RFM issue cycles, same
/// per-channel statistics blocks.  The memory-bound workload keeps every
/// channel busy so the parallel branch actually runs.
#[test]
fn results_are_thread_count_independent() {
    let workloads = representative_workloads();
    let memory_bound = &workloads[0];
    assert_eq!(memory_bound.intensity, workloads::MemoryIntensity::High);
    for setup in all_setups() {
        for channels in [2u32, 4] {
            let seed = 0xD1FF ^ u64::from(channels);
            let sequential = run_with_threads(&setup, memory_bound, 4_000, channels, 1, seed);
            for sim_threads in [2usize, 4] {
                let sharded =
                    run_with_threads(&setup, memory_bound, 4_000, channels, sim_threads, seed);
                assert_eq!(
                    sequential,
                    sharded,
                    "sim-threads {sim_threads} diverged from sequential: setup {:?} channels {channels}",
                    setup.label()
                );
            }
            assert!(sequential.completed, "race run hit the tick cap");
        }
    }
}

/// The thread-count race under the tick engine: its all-channels-due mask
/// drives the parallel branch on every tick, so one representative
/// configuration pins the tick engine's sharded path too.
#[test]
fn tick_engine_results_are_thread_count_independent() {
    let workloads = representative_workloads();
    let memory_bound = &workloads[0];
    let run = |sim_threads: usize| {
        let config = ExperimentConfig::new(MitigationSetup::AboOnly, 4_000)
            .with_cores(2)
            .with_channels(4)
            .with_engine(EngineKind::Tick)
            .with_sim_threads(sim_threads);
        run_workload(&config, &memory_bound.workload, 0x71C2).expect("ABO-only resolves")
    };
    let sequential = run(1);
    assert_eq!(sequential, run(4), "tick engine diverged at sim-threads 4");
    assert!(sequential.completed, "tick race run hit the tick cap");
}

/// The adversarial co-runner under the thread-count race: every registered
/// attack pattern hammering one channel-sharded subsystem must stay
/// cycle-exact across `--sim-threads {1, 2, 4}` — Alert assertion and
/// mitigation wake-ups land on specific channels, so this pins the merge
/// barriers under the least uniform traffic we can generate.
#[test]
fn thread_count_race_survives_an_adversarial_corunner() {
    let workloads = representative_workloads();
    let low_intensity = &workloads[workloads.len() - 1];
    for descriptor in workloads::attack_registry() {
        for channels in [2u32, 4] {
            let run = |sim_threads: usize| {
                let config = ExperimentConfig::new(MitigationSetup::AboOnly, 1_500)
                    .with_cores(1)
                    .with_channels(channels)
                    .with_attack(Some(descriptor.kind))
                    .with_sim_threads(sim_threads);
                run_workload(&config, &low_intensity.workload, 0xA77)
                    .expect("ABO-only resolves at NRH 1024")
            };
            let sequential = run(1);
            for sim_threads in [2usize, 4] {
                assert_eq!(
                    sequential,
                    run(sim_threads),
                    "attack {} diverged at sim-threads {sim_threads} on {channels} channels",
                    descriptor.slug
                );
            }
        }
    }
}

/// The rank race: a multi-rank device adds per-rank tFAW windows and
/// staggered refresh to both engines' timing paths, so every registered
/// mitigation on a 1- and 2-rank subsystem must stay **bit-for-bit
/// identical** tick-vs-event AND across `--sim-threads {1, 4}` — rank bits
/// land inside each channel, so the sharded merge must not reorder
/// rank-interleaved traffic.
#[test]
fn engines_agree_across_rank_counts() {
    let workloads = representative_workloads();
    let memory_bound = &workloads[0];
    assert_eq!(memory_bound.intensity, workloads::MemoryIntensity::High);
    for setup in all_setups() {
        for ranks in [1u32, 2] {
            let seed = 0xD1FF ^ u64::from(ranks);
            let run = |engine: EngineKind, sim_threads: usize| {
                let config = ExperimentConfig::new(setup.clone(), 4_000)
                    .with_cores(2)
                    .with_channels(2)
                    .with_ranks(ranks)
                    .with_engine(engine)
                    .with_sim_threads(sim_threads);
                run_workload(&config, &memory_bound.workload, seed)
                    .expect("registered setups resolve at NRH 1024")
            };
            let ticked = run(EngineKind::Tick, 1);
            let evented = run(EngineKind::Event, 1);
            assert_eq!(
                ticked,
                evented,
                "engines diverged at {ranks} rank(s): setup {:?}",
                setup.label()
            );
            let sharded = run(EngineKind::Event, 4);
            assert_eq!(
                evented,
                sharded,
                "sim-threads 4 diverged at {ranks} rank(s): setup {:?}",
                setup.label()
            );
            assert!(ticked.completed, "rank race run hit the tick cap");
        }
    }
}

/// The full quick suite under every setup, at the quick campaign budget,
/// on both the single-channel and a four-channel subsystem.
/// Heavy: meant for the release-mode CI job
/// (`cargo test --release --test engine_equivalence -- --include-ignored`).
#[test]
#[ignore = "heavy sweep; run in release via the CI engine-equivalence job"]
fn engines_agree_on_the_full_quick_suite() {
    for setup in all_setups() {
        for workload in quick_suite() {
            for channels in [1u32, 4] {
                assert_engines_agree_on_channels(&setup, &workload, 20_000, channels);
            }
        }
    }
}

/// The full quick suite raced across thread counts on a four-channel
/// subsystem.  Heavy: meant for the release-mode CI job.
#[test]
#[ignore = "heavy sweep; run in release via the CI engine-equivalence job"]
fn thread_count_race_on_the_full_quick_suite() {
    for setup in all_setups() {
        for workload in quick_suite() {
            let sequential = run_with_threads(&setup, &workload, 20_000, 4, 1, 0xD1FF);
            for sim_threads in [2usize, 4] {
                assert_eq!(
                    sequential,
                    run_with_threads(&setup, &workload, 20_000, 4, sim_threads, 0xD1FF),
                    "sim-threads {sim_threads} diverged: setup {:?} workload {}",
                    setup.label(),
                    workload.workload.name
                );
            }
        }
    }
}
