//! End-to-end integration tests for the PRACLeak attacks: covert-channel bit
//! recovery and side-channel key-nibble recovery through the full
//! controller + DRAM + PRAC stack.

use prac_timing::prelude::*;
use pracleak::covert::run_covert_channel;

#[test]
fn activity_based_covert_channel_transfers_bits_without_errors() {
    let result = run_covert_channel(CovertChannelKind::ActivityBased, 128, 16, 7);
    assert_eq!(result.bits_transmitted, 16);
    assert_eq!(result.bit_errors, 0, "{result:?}");
    assert!(result.bitrate_kbps > 5.0);
}

#[test]
fn activation_count_covert_channel_transfers_symbols_exactly() {
    let result = run_covert_channel(CovertChannelKind::ActivationCountBased, 128, 8, 19);
    assert_eq!(result.bit_errors, 0, "{result:?}");
    // log2(128) = 7 bits per symbol.
    assert_eq!(result.bits_transmitted, 8 * 7);
    assert!(result.bitrate_kbps > 50.0);
}

#[test]
fn covert_channel_bitrate_shrinks_as_nbo_grows() {
    let fast = run_covert_channel(CovertChannelKind::ActivityBased, 128, 6, 3);
    let slow = run_covert_channel(CovertChannelKind::ActivityBased, 512, 6, 3);
    assert!(fast.bitrate_kbps > slow.bitrate_kbps);
    assert!(fast.transmission_period_us < slow.transmission_period_us);
}

#[test]
fn aes_side_channel_recovers_key_nibbles_end_to_end() {
    let attack = SideChannelExperiment {
        nbo: 128,
        encryptions: 100,
        policy: MitigationPolicy::AboOnly,
        seed: 0xA11CE,
    };
    let mut correct = 0;
    let keys = [0x10u8, 0x4C, 0x9E, 0xE3];
    for &k0 in &keys {
        let outcome = attack.run_for_key_byte(k0, 0);
        assert!(outcome.abo_rfms > 0, "the attack relies on ABO-RFMs firing");
        if outcome.nibble_recovered() {
            correct += 1;
        }
    }
    assert_eq!(
        correct,
        keys.len(),
        "every probed key nibble should be recovered"
    );
}

#[test]
fn aes_side_channel_attack_matches_ground_truth_hot_row() {
    // 100 encryptions keep the hot row just below NBO = 128 so the ABO fires
    // during the attacker's probe phase (as in the paper), not during the
    // victim phase.
    let attack = SideChannelExperiment {
        nbo: 128,
        encryptions: 100,
        policy: MitigationPolicy::AboOnly,
        seed: 1,
    };
    let outcome = attack.run_for_key_byte(0xB4, 0);
    // The row the attack leaks must be the row the victim really hammered.
    assert_eq!(outcome.leaked_row, outcome.hottest_victim_row());
    assert_eq!(outcome.hottest_victim_row(), Some(0xB));
}
