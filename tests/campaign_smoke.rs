//! End-to-end smoke test of the campaign engine through the umbrella crate:
//! a tiny two-scenario campaign runs through the parallel runner with cache
//! and artifact store, writes valid JSON + CSV, and hits the cache on a
//! second run.

use prac_timing::campaign::registry::{all_campaigns, find_campaign, Profile};
use prac_timing::campaign::{
    ArtifactStore, Campaign, CampaignRunner, PerfScenario, ResultCache, Scenario, ScenarioSpec,
};
use prac_timing::prelude::*;
use prac_timing::workloads::quick_suite;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("prac-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn tiny_campaign() -> Campaign {
    let mut campaign = Campaign::new("smoke", "Two-scenario smoke campaign", "not a paper figure");
    campaign.push(Scenario::new(
        "perf-cell",
        ScenarioSpec::Perf(Box::new(PerfScenario {
            setup: MitigationSetup::Tprac {
                tref_rate: TrefRate::None,
                counter_reset: true,
            },
            rowhammer_threshold: 1024,
            prac_level: PracLevel::One,
            workload: quick_suite().remove(0),
            instructions_per_core: 3_000,
            cores: 1,
            channels: 1,
            ranks: 0,
            profile: dram_sim::DeviceProfile::JedecBaseline,
            attack: None,
            seed: 42,
        })),
    ));
    campaign.push(Scenario::new(
        "solve-cell",
        ScenarioSpec::SolveWindow {
            nrh: 1024,
            counter_reset: true,
        },
    ));
    campaign
}

#[test]
fn tiny_campaign_writes_artifacts_and_caches() {
    let root = temp_root("artifacts");
    let campaign = tiny_campaign();
    let runner = || {
        CampaignRunner::new()
            .with_workers(2)
            .with_cache(ResultCache::open(root.join("cache")).unwrap())
            .with_artifacts(ArtifactStore::new(root.join("campaigns")))
    };

    let first = runner().run(&campaign).unwrap();
    assert_eq!(first.records.len(), 2);
    assert_eq!((first.cached, first.executed), (0, 2));

    // The JSON artifact parses and carries both scenarios with metrics.
    let paths = first.artifacts.clone().unwrap();
    let json_text = std::fs::read_to_string(&paths.json).unwrap();
    let json = serde_json::from_str(&json_text).unwrap();
    assert_eq!(json.get("campaign").and_then(|v| v.as_str()), Some("smoke"));
    let scenarios = json.get("scenarios").and_then(|v| v.as_array()).unwrap();
    assert_eq!(scenarios.len(), 2);
    let perf = scenarios[0].get("metrics").unwrap();
    let normalized = perf
        .get("normalized_performance")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(
        normalized > 0.5 && normalized < 1.1,
        "normalised perf = {normalized}"
    );

    // The CSV artifact is rectangular: header + one row per scenario.
    let csv = std::fs::read_to_string(&paths.csv).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("scenario,key,cached,wall_ms"));
    let columns = header.split(',').count();
    for line in lines.clone() {
        assert_eq!(line.split(',').count(), columns, "ragged CSV row: {line}");
    }
    assert_eq!(lines.count(), 2);

    // A second run is served entirely from the cache with identical metrics.
    let second = runner().run(&campaign).unwrap();
    assert_eq!((second.cached, second.executed), (2, 0));
    assert_eq!(first.records[0].metrics, second.records[0].metrics);
}

#[test]
fn registry_covers_the_paper() {
    let campaigns = all_campaigns(&Profile::quick());
    assert!(campaigns.len() >= 10, "{} campaigns", campaigns.len());
    for expected in [
        "fig03", "fig04", "fig05", "fig07", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
        "table2", "table5", "storage", "defenses", "scaling", "attacks",
    ] {
        assert!(
            find_campaign(expected, &Profile::quick()).is_some(),
            "missing campaign {expected}"
        );
    }
}
