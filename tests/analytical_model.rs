//! Integration tests for the analytical pieces: the Figure 7 security model,
//! the energy model and the storage-overhead accounting, exercised through
//! the public umbrella API.

use prac_core::energy::{EnergyInputs, EnergyModel};
use prac_core::obfuscation::ObfuscationConfig;
use prac_core::overhead::StorageModel;
use prac_core::security::{figure7_windows, CounterResetPolicy};
use prac_timing::prelude::*;

#[test]
fn figure7_series_has_the_published_shape() {
    let timing = DramTimingSummary::ddr5_8000b();
    let with_reset = SecurityAnalysis::with_back_off_threshold(
        4096,
        &timing,
        CounterResetPolicy::ResetEveryTrefw,
    );
    let without_reset =
        SecurityAnalysis::with_back_off_threshold(4096, &timing, CounterResetPolicy::NoReset);
    let windows = figure7_windows();
    let reset_series = with_reset.tmax_series(&windows);
    let noreset_series = without_reset.tmax_series(&windows);

    // Monotone in the window, no-reset dominates reset, and the gap widens
    // with the window (the paper's three qualitative observations).
    for (r, n) in reset_series.iter().zip(&noreset_series) {
        assert!(r.1 <= n.1);
    }
    for series in [&reset_series, &noreset_series] {
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }
    let gap_small = noreset_series[0].1 - reset_series[0].1;
    let gap_large = noreset_series[5].1 - reset_series[5].1;
    assert!(gap_large >= gap_small);
    // Magnitudes: hundreds at 1 tREFI, thousands at 4 tREFI.
    assert!((300..1500).contains(&reset_series[3].1));
    assert!((1200..6000).contains(&noreset_series[5].1));
}

#[test]
fn tb_window_solver_covers_the_full_nrh_sweep() {
    let timing = DramTimingSummary::ddr5_8000b();
    let mut previous = 0.0;
    for nrh in [128u32, 256, 512, 1024, 2048, 4096] {
        let solution = SecurityAnalysis::with_back_off_threshold(
            nrh,
            &timing,
            CounterResetPolicy::ResetEveryTrefw,
        )
        .solve_tb_window()
        .unwrap_or_else(|e| panic!("NRH={nrh} should be solvable: {e}"));
        assert!(solution.tmax < u64::from(nrh));
        assert!(solution.tb_window_trefi > previous);
        previous = solution.tb_window_trefi;
    }
}

#[test]
fn energy_model_reproduces_table5_monotonicity() {
    // Synthesise the RFM frequencies implied by the per-NRH TB-Windows and
    // check the total energy overhead decreases monotonically with NRH.
    let timing = DramTimingSummary::ddr5_8000b();
    let model = EnergyModel::default();
    let execution_ns = 50_000_000.0;
    let baseline = EnergyInputs {
        activations: 2_000_000,
        reads_writes: 8_000_000,
        refreshes: (execution_ns / timing.t_refi_ns) as u64,
        rfms: 0,
        banks_per_rfm: 0,
        execution_time_ns: execution_ns,
    };
    let mut last_total = f64::MAX;
    for nrh in [128u32, 512, 1024, 4096] {
        let solution = SecurityAnalysis::with_back_off_threshold(
            nrh,
            &timing,
            CounterResetPolicy::ResetEveryTrefw,
        )
        .solve_tb_window()
        .unwrap();
        let slowdown = 1.0 + solution.bandwidth_loss;
        let protected = EnergyInputs {
            rfms: (execution_ns / solution.tb_window_ns) as u64,
            banks_per_rfm: 128,
            execution_time_ns: execution_ns * slowdown,
            ..baseline
        };
        let overhead = model.overhead(&baseline, &protected);
        assert!(
            overhead.total < last_total,
            "overhead must fall as NRH rises"
        );
        assert!(overhead.total > 0.0);
        last_total = overhead.total;
    }
}

#[test]
fn storage_overhead_matches_section_6_8() {
    let timing = DramTimingSummary::ddr5_8000b();
    let model = StorageModel::ddr5_32gb(&timing, 128);
    let tprac = model.tprac_overhead(&timing, QueueKind::SingleEntryFrequency);
    // A ~24-bit controller register plus one ~29-bit entry per bank:
    // well under a kilobyte for the whole channel.
    assert!(tprac.controller_bits <= 24);
    assert!(tprac.total_bytes() < 1024);
    // The idealised priority queue is orders of magnitude bigger — the reason
    // the paper's single-entry design matters.
    let ideal = model.tprac_overhead(&timing, QueueKind::Priority);
    assert!(ideal.dram_bits_total() > tprac.dram_bits_total() * 10_000);
}

#[test]
fn obfuscation_defense_trades_bandwidth_for_partial_secrecy() {
    let timing = DramTimingSummary::ddr5_8000b();
    let off = ObfuscationConfig::new(0.0).unwrap();
    let half = ObfuscationConfig::new(0.5).unwrap();
    let full = ObfuscationConfig::new(1.0).unwrap();
    // More injection, more bandwidth loss.
    assert!(off.bandwidth_loss(&timing) < half.bandwidth_loss(&timing));
    assert!(half.bandwidth_loss(&timing) < full.bandwidth_loss(&timing));
    // More injection, less residual leakage — but never zero (Section 7.1's
    // argument for why TPRAC is still needed).
    let victim_rfms = 16;
    assert_eq!(off.residual_leakage(&timing, victim_rfms), 1.0);
    let leak_half = half.residual_leakage(&timing, victim_rfms);
    assert!(leak_half < 1.0 && leak_half > 0.0);
}
